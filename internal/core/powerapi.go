package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
)

// collectTimeout bounds how long a synchronous sampling round may wait for
// the actor pipeline (wall-clock, not simulated time).
const collectTimeout = 5 * time.Second

// Option customises a PowerAPI instance.
type Option func(*options)

type options struct {
	events         []hpc.Event
	reportBuffer   int
	shards         int
	groupResolver  func(pid int) string
	extraReporters []namedReporter
}

type namedReporter struct {
	name    string
	deliver func(AggregatedReport) error
}

// WithEvents overrides the hardware events the Sensor monitors (defaults to
// the events used by the power model).
func WithEvents(events []hpc.Event) Option {
	return func(o *options) { o.events = append([]hpc.Event(nil), events...) }
}

// WithReportBuffer sets the capacity of the Reports channel.
func WithReportBuffer(n int) Option {
	return func(o *options) { o.reportBuffer = n }
}

// WithShards splits the Sensor and Formula stages into n PID-partitioned
// shards each. Monitored PIDs are spread over the Sensor pool by a
// consistent-hash router, every sampling tick fans out to all shards in
// parallel, and each shard contributes one batched partial result that the
// Aggregator merges back into a single report. The default of 1 preserves the
// paper's one-actor-per-stage pipeline.
func WithShards(n int) Option {
	return func(o *options) { o.shards = n }
}

// WithGroupResolver aggregates power along an extra dimension: the resolver
// maps a PID to a group label (application, tenant, VM, …) and the
// Aggregator fills AggregatedReport.PerGroup accordingly.
func WithGroupResolver(resolve func(pid int) string) Option {
	return func(o *options) { o.groupResolver = resolve }
}

// WithProcessNameGrouping aggregates power by process name as known to the
// monitored machine's process table.
func WithProcessNameGrouping(m *machine.Machine) Option {
	return WithGroupResolver(func(pid int) string {
		p, err := m.Processes().Get(pid)
		if err != nil {
			return "unknown"
		}
		return p.Name()
	})
}

// WithReporter registers an additional Reporter component (CSV, JSON lines,
// energy accumulator, …) as its own actor subscribed to the aggregated
// reports topic. Errors returned by the reporter are routed to the pipeline's
// error topic.
func WithReporter(name string, deliver func(AggregatedReport) error) Option {
	return func(o *options) {
		o.extraReporters = append(o.extraReporters, namedReporter{name: name, deliver: deliver})
	}
}

// PowerAPI is the middleware facade: it owns the actor system implementing
// the Figure 2 pipeline and exposes process-level power monitoring over a
// simulated machine.
type PowerAPI struct {
	machine *machine.Machine
	model   *model.CPUPowerModel
	system  *actor.System
	sensors *actor.Router
	shards  int

	reports     chan AggregatedReport
	errCount    atomic.Int64
	lastErr     atomic.Value // errBox
	mu          sync.Mutex
	lastCollect time.Duration
	monitored   map[int]bool
	closed      bool
}

// New wires a PowerAPI pipeline onto a machine using the given power model.
func New(m *machine.Machine, powerModel *model.CPUPowerModel, opts ...Option) (*PowerAPI, error) {
	if m == nil {
		return nil, errors.New("core: nil machine")
	}
	if err := powerModel.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cfg := options{reportBuffer: 64, shards: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.shards < 1 {
		return nil, fmt.Errorf("core: shard count must be at least 1, got %d", cfg.shards)
	}
	if len(cfg.events) == 0 {
		events, err := powerModel.Events()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cfg.events = events
	}

	api := &PowerAPI{
		machine:     m,
		model:       powerModel,
		system:      actor.NewSystem("powerapi"),
		shards:      cfg.shards,
		reports:     make(chan AggregatedReport, cfg.reportBuffer),
		monitored:   make(map[int]bool),
		lastCollect: m.Now(),
	}
	// Pipeline stage failures are supervised: a panicking shard is restarted
	// and the failure lands on the error topic instead of killing the system.
	supervised := func(stage string) actor.RestartPolicy {
		return actor.RestartPolicy{
			MaxRestarts: -1,
			OnPanic: func(info actor.PanicInfo) {
				api.errCount.Add(1)
				api.lastErr.Store(errBox{fmt.Errorf("core: %s actor %s panicked (restart %d): %v", stage, info.Actor, info.Restarts, info.Value)})
			},
		}
	}

	bus := api.system.Bus()
	sensorRefs := make([]*actor.Ref, cfg.shards)
	for i := 0; i < cfg.shards; i++ {
		// The formula shard is stateless: restart from a fresh instance.
		formula, err := api.system.SpawnSupervised(fmt.Sprintf("formula-%d", i),
			func() actor.Behavior { return newFormulaShardBehavior(powerModel) }, 0, supervised("formula"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if err := bus.Subscribe(SensorShardTopic(i), formula); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		// The sensor shard owns the open counter sets of its PIDs, so a
		// restart keeps the same behaviour instance (state preserved).
		sensorShard := newSensorShardBehavior(m, cfg.events, i, cfg.shards)
		sensor, err := api.system.SpawnSupervised(fmt.Sprintf("sensor-%d", i),
			func() actor.Behavior { return sensorShard }, 0, supervised("sensor"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		sensorRefs[i] = sensor
	}
	sensors, err := actor.NewRouter(actor.ConsistentHash, sensorRefs...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	// The aggregator keeps in-flight round state across restarts; reporters
	// wrap externally supplied delivery functions. Both keep their instance
	// on restart but still record the panic like the shard pools do.
	aggregatorBhv := newAggregatorBehavior(powerModel.IdleWatts, cfg.groupResolver)
	aggregator, err := api.system.SpawnSupervised("aggregator",
		func() actor.Behavior { return aggregatorBhv }, 0, supervised("aggregator"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	reporterBhv := newReporterBehavior(api.deliver)
	reporter, err := api.system.SpawnSupervised("reporter",
		func() actor.Behavior { return reporterBhv }, 0, supervised("reporter"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	extraRefs := make([]*actor.Ref, 0, len(cfg.extraReporters))
	for i, extra := range cfg.extraReporters {
		deliver := extra.deliver
		behavior := actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
			r, ok := msg.(AggregatedReport)
			if !ok {
				return
			}
			if err := deliver(r); err != nil {
				ctx.Publish(TopicErrors, PipelineError{Stage: "reporter", Err: err})
			}
		})
		ref, err := api.system.SpawnSupervised(fmt.Sprintf("reporter-%s-%d", extra.name, i),
			func() actor.Behavior { return behavior }, 0, supervised("reporter"))
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		extraRefs = append(extraRefs, ref)
	}
	errorSinkBhv := actor.BehaviorFunc(func(_ *actor.Context, msg actor.Message) {
		if perr, ok := msg.(PipelineError); ok {
			api.errCount.Add(1)
			api.lastErr.Store(errBox{perr.Err})
		}
	})
	errorSink, err := api.system.SpawnSupervised("error-sink",
		func() actor.Behavior { return errorSinkBhv }, 0, supervised("error-sink"))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	if err := bus.Subscribe(TopicPowerEstimates, aggregator); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := bus.Subscribe(TopicAggregatedReports, reporter); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	for _, ref := range extraRefs {
		if err := bus.Subscribe(TopicAggregatedReports, ref); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	if err := bus.Subscribe(TopicErrors, errorSink); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	api.sensors = sensors
	return api, nil
}

// deliver pushes a report to the Reports channel, dropping the oldest entry
// when the consumer lags (monitoring must never block the pipeline).
func (p *PowerAPI) deliver(report AggregatedReport) {
	for {
		select {
		case p.reports <- report:
			return
		default:
			select {
			case <-p.reports:
			default:
			}
		}
	}
}

// Machine returns the monitored machine.
func (p *PowerAPI) Machine() *machine.Machine { return p.machine }

// Model returns the power model in use.
func (p *PowerAPI) Model() *model.CPUPowerModel { return p.model }

// ActorNames lists the pipeline's actors (diagnostics and tests).
func (p *PowerAPI) ActorNames() []string { return p.system.ActorNames() }

// Shards returns the size of the Sensor/Formula shard pools.
func (p *PowerAPI) Shards() int { return p.shards }

// ShardOf returns the index of the Sensor shard a PID is routed to.
func (p *PowerAPI) ShardOf(pid int) int {
	return p.sensors.IndexFor(uint64(pid))
}

// Reports exposes the asynchronous stream of aggregated reports.
func (p *PowerAPI) Reports() <-chan AggregatedReport { return p.reports }

// ErrorCount returns the number of pipeline errors observed so far.
func (p *PowerAPI) ErrorCount() int64 { return p.errCount.Load() }

// errBox wraps pipeline errors for lastErr: atomic.Value panics when stores
// mix concrete types, and errors arrive with many (wrapped and unwrapped).
type errBox struct{ err error }

// LastError returns the most recent pipeline error (nil if none).
func (p *PowerAPI) LastError() error {
	if v := p.lastErr.Load(); v != nil {
		return v.(errBox).err
	}
	return nil
}

// Attach starts monitoring the given PIDs.
func (p *PowerAPI) Attach(pids ...int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("core: powerapi is shut down")
	}
	for _, pid := range pids {
		res, err := p.sensors.Ask(uint64(pid), func(reply chan<- actor.Message) actor.Message {
			return attachRequest{PID: pid, Reply: reply}
		}, collectTimeout)
		if err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if err := asError(res); err != nil {
			return err
		}
		p.monitored[pid] = true
	}
	return nil
}

// asError converts an Ask reply carrying an error (or nil) back to an error.
func asError(msg actor.Message) error {
	if msg == nil {
		return nil
	}
	err, ok := msg.(error)
	if !ok {
		return fmt.Errorf("core: unexpected reply %T", msg)
	}
	return err
}

// Detach stops monitoring a PID.
func (p *PowerAPI) Detach(pid int) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errors.New("core: powerapi is shut down")
	}
	res, err := p.sensors.Ask(uint64(pid), func(reply chan<- actor.Message) actor.Message {
		return detachRequest{PID: pid, Reply: reply}
	}, collectTimeout)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := asError(res); err != nil {
		return err
	}
	delete(p.monitored, pid)
	return nil
}

// AttachAllRunnable attaches every currently runnable process.
func (p *PowerAPI) AttachAllRunnable() error {
	return p.Attach(p.machine.Processes().PIDs()...)
}

// Monitored returns the PIDs currently monitored.
func (p *PowerAPI) Monitored() []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]int, 0, len(p.monitored))
	for pid := range p.monitored {
		out = append(out, pid)
	}
	return out
}

// Collect performs one synchronous sampling round covering the simulated time
// elapsed since the previous round and returns the aggregated report.
func (p *PowerAPI) Collect() (AggregatedReport, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return AggregatedReport{}, errors.New("core: powerapi is shut down")
	}
	now := p.machine.Now()
	window := now - p.lastCollect
	if window <= 0 {
		p.mu.Unlock()
		return AggregatedReport{}, fmt.Errorf("core: no simulated time elapsed since the previous collection (now %v)", now)
	}
	p.lastCollect = now
	p.mu.Unlock()

	if delivered := p.sensors.Broadcast(tickRequest{Timestamp: now, Window: window}); delivered < p.shards {
		return AggregatedReport{}, fmt.Errorf("core: tick reached %d of %d sensor shards: %w", delivered, p.shards, actor.ErrStopped)
	}
	deadline := time.After(collectTimeout)
	for {
		select {
		case report := <-p.reports:
			if report.Timestamp == now {
				return report, nil
			}
			// A stale report from an earlier asynchronous round: skip it.
		case <-deadline:
			return AggregatedReport{}, fmt.Errorf("core: timed out waiting for the report of round %v", now)
		}
	}
}

// RunMonitored advances the machine in interval-sized steps for the given
// simulated duration, collecting one report per step. The callback (optional)
// receives every report as it is produced; all reports are also returned.
func (p *PowerAPI) RunMonitored(duration, interval time.Duration, onReport func(AggregatedReport)) ([]AggregatedReport, error) {
	return p.RunMonitoredContext(context.Background(), duration, interval, onReport)
}

// RunMonitoredContext is RunMonitored with cancellation: when ctx is done the
// loop stops between rounds and the reports collected so far are returned
// alongside ctx.Err(), letting callers (like the daemon's signal handler)
// stop cleanly on a round boundary.
func (p *PowerAPI) RunMonitoredContext(ctx context.Context, duration, interval time.Duration, onReport func(AggregatedReport)) ([]AggregatedReport, error) {
	if duration <= 0 || interval <= 0 {
		return nil, errors.New("core: duration and interval must be positive")
	}
	if interval > duration {
		return nil, errors.New("core: interval exceeds duration")
	}
	steps := int(duration / interval)
	out := make([]AggregatedReport, 0, steps)
	for i := 0; i < steps; i++ {
		select {
		case <-ctx.Done():
			return out, ctx.Err()
		default:
		}
		if _, err := p.machine.Run(interval); err != nil {
			return out, fmt.Errorf("core: advance machine: %w", err)
		}
		report, err := p.Collect()
		if err != nil {
			return out, err
		}
		out = append(out, report)
		if onReport != nil {
			onReport(report)
		}
	}
	return out, nil
}

// Shutdown stops the actor pipeline. It is idempotent.
func (p *PowerAPI) Shutdown() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.system.Shutdown()
}
