package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/source"
	"powerapi/internal/target"
)

func TestWithVMsValidation(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	if err := h.Create("vms/web"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"empty name", []Option{WithVMs(VMDef{PIDs: []int{1}})}, "invalid VM name"},
		{"bad name", []Option{WithVMs(VMDef{Name: "a/b", PIDs: []int{1}})}, "invalid VM name"},
		{"duplicate name", []Option{WithVMs(VMDef{Name: "vm1", PIDs: []int{1}}, VMDef{Name: "vm1", PIDs: []int{2}})}, "defined twice"},
		{"no designation", []Option{WithVMs(VMDef{Name: "vm1"})}, "neither"},
		{"both designations", []Option{WithVMs(VMDef{Name: "vm1", CgroupPath: "vms/web", PIDs: []int{1}})}, "both"},
		{"cgroup without hierarchy", []Option{WithVMs(VMDef{Name: "vm1", CgroupPath: "vms/web"})}, "no hierarchy"},
		{"pid overlap", []Option{WithVMs(VMDef{Name: "vm1", PIDs: []int{1, 2}}, VMDef{Name: "vm2", PIDs: []int{2}})}, "double-counted"},
		{"invalid pid", []Option{WithVMs(VMDef{Name: "vm1", PIDs: []int{0}})}, "invalid pid"},
		{"subtree overlap", []Option{
			WithCgroups(h),
			WithVMs(VMDef{Name: "vm1", CgroupPath: "vms"}, VMDef{Name: "vm2", CgroupPath: "vms/web"}),
		}, "overlapping"},
		{"delegated without bridge", []Option{WithSources(source.ModeDelegated)}, "WithVMBridge"},
		{"bridge overridden by other mode", []Option{WithVMBridge(nil), WithSources(source.ModeBlended)}, "cannot combine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(m, testModel(), tc.opts...)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestVMRollupPIDSetConservation checks the host side of the bridge on
// pid-set VMs under the sharded blended pipeline: every VM's row is the
// exact sum of its members' estimates, the per-VM view never double-counts a
// PID into the machine total, and unclaimed PIDs stay outside every VM.
func TestVMRollupPIDSetConservation(t *testing.T) {
	m := newTestMachine(t)
	pids := spawnLevels(t, m, 1.0, 0.8, 0.5, 0.3, 0.7)
	api, err := New(m, testModel(),
		WithShards(4),
		WithSources(source.ModeBlended),
		WithVMs(
			VMDef{Name: "vm-a", PIDs: pids[:2]},
			VMDef{Name: "vm-b", PIDs: pids[2:4]},
		))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if err := api.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		r, err := api.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(r.PerVM) != 2 {
			t.Fatalf("round %d: want 2 VM rows, got %v", round, r.PerVM)
		}
		wantA := r.PerPID[pids[0]] + r.PerPID[pids[1]]
		if math.Abs(r.PerVM["vm-a"]-wantA) > 1e-9 {
			t.Fatalf("round %d: vm-a %.9f != member sum %.9f", round, r.PerVM["vm-a"], wantA)
		}
		wantB := r.PerPID[pids[2]] + r.PerPID[pids[3]]
		if math.Abs(r.PerVM["vm-b"]-wantB) > 1e-9 {
			t.Fatalf("round %d: vm-b %.9f != member sum %.9f", round, r.PerVM["vm-b"], wantB)
		}
		// Conservation: the VM rows are a projection of PerPID, so their sum
		// plus the unclaimed PID equals the attributed machine total exactly
		// once.
		var pidSum float64
		for _, watts := range r.PerPID {
			pidSum += watts
		}
		vmPlusRest := r.PerVM["vm-a"] + r.PerVM["vm-b"] + r.PerPID[pids[4]]
		if math.Abs(vmPlusRest-pidSum) > 1e-9 {
			t.Fatalf("round %d: vm rows + unclaimed %.9f != per-PID sum %.9f", round, vmPlusRest, pidSum)
		}
		if math.Abs(pidSum-r.MeasuredWatts) > 1e-6 {
			t.Fatalf("round %d: per-PID sum %.9f != measured %.9f", round, pidSum, r.MeasuredWatts)
		}
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

// TestVMRollupCgroupBacked checks cgroup-subtree VMs: the VM row equals the
// subtree's recursive member sum and tracks membership changes.
func TestVMRollupCgroupBacked(t *testing.T) {
	m := newTestMachine(t)
	pids := spawnLevels(t, m, 0.9, 0.6, 0.4)
	h := cgroup.NewHierarchy()
	if err := h.Add("vms/web", pids[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("vms/web/api", pids[1]); err != nil {
		t.Fatal(err)
	}
	api, err := New(m, testModel(),
		WithCgroups(h),
		WithVMs(VMDef{Name: "vm-web", CgroupPath: "vms/web"}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if err := api.AttachTargets(target.VM("vm-web")); err != nil {
		t.Fatal(err)
	}
	monitored := api.Monitored()
	if len(monitored) != 2 {
		t.Fatalf("attaching the VM should monitor its 2 subtree members, got %v", monitored)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := r.PerPID[pids[0]] + r.PerPID[pids[1]]
	if want <= 0 {
		t.Fatalf("expected positive member power, got %v", r.PerPID)
	}
	if math.Abs(r.PerVM["vm-web"]-want) > 1e-9 {
		t.Fatalf("vm-web %.9f != subtree sum %.9f", r.PerVM["vm-web"], want)
	}
	// A member joining the subtree is picked up on the next Collect.
	if err := h.Add("vms/web", pids[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err = api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPID) != 3 {
		t.Fatalf("want 3 member rows after join, got %v", r.PerPID)
	}
	// Detaching the VM stops monitoring its members.
	if err := api.DetachTargets(target.VM("vm-web")); err != nil {
		t.Fatal(err)
	}
	if got := api.Monitored(); len(got) != 0 {
		t.Fatalf("detaching the VM should release its members, got %v", got)
	}
}

// TestVMAttachUnknown rejects vm targets without a matching definition.
func TestVMAttachUnknown(t *testing.T) {
	m := newTestMachine(t)
	api := newTestAPI(t, m)
	if err := api.AttachTargets(target.VM("ghost")); err == nil {
		t.Fatal("attaching an undefined VM should fail")
	}
}

// TestVMRollupDynamicOverlapCountsOnce pins the dynamic double-claim rule: a
// pid designated by a pid-set VM that also sits inside another VM's cgroup
// subtree is counted for the first VM in name order and surfaces a pipeline
// error instead of inflating the VM rows.
func TestVMRollupDynamicOverlapCountsOnce(t *testing.T) {
	m := newTestMachine(t)
	pids := spawnLevels(t, m, 0.9, 0.5)
	h := cgroup.NewHierarchy()
	// pids[1] is both vm-b's pid-set member and inside vm-a's subtree.
	if err := h.Add("vms/a", pids[0]); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("vms/a", pids[1]); err != nil {
		t.Fatal(err)
	}
	api, err := New(m, testModel(),
		WithCgroups(h),
		WithVMs(
			VMDef{Name: "vm-a", CgroupPath: "vms/a"},
			VMDef{Name: "vm-b", PIDs: []int{pids[1]}},
		))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if err := api.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	wantA := r.PerPID[pids[0]] + r.PerPID[pids[1]]
	if math.Abs(r.PerVM["vm-a"]-wantA) > 1e-9 {
		t.Fatalf("vm-a (first in name order) should claim both pids: got %.9f want %.9f", r.PerVM["vm-a"], wantA)
	}
	if _, ok := r.PerVM["vm-b"]; ok {
		t.Fatalf("vm-b's only pid is already claimed; want no row, got %v", r.PerVM)
	}
	// The error-sink actor consumes the double-claim report asynchronously.
	deadline := time.Now().Add(5 * time.Second)
	for api.ErrorCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("the double claim should surface as a pipeline error")
		}
		time.Sleep(time.Millisecond)
	}
}
