package core

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file provides ready-made Reporter implementations, fulfilling the
// paper's description of the Reporter component: "converts the power
// estimations produced by the library into a suitable format". The facade
// wires them as additional subscribers of the aggregated-reports topic.

// CSVReporter writes one line per monitored process and round:
// timestamp_seconds, pid, group, watts, total_watts.
type CSVReporter struct {
	mu      sync.Mutex
	writer  *csv.Writer
	header  bool
	resolve func(pid int) string
}

// NewCSVReporter creates a CSV reporter writing to w. The resolver (optional)
// maps PIDs to a human-readable group/application name.
func NewCSVReporter(w io.Writer, resolve func(pid int) string) (*CSVReporter, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil writer")
	}
	return &CSVReporter{writer: csv.NewWriter(w), resolve: resolve}, nil
}

// Report writes the rows of one aggregated report.
func (r *CSVReporter) Report(report AggregatedReport) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.header {
		if err := r.writer.Write([]string{"seconds", "pid", "group", "watts", "total_watts"}); err != nil {
			return fmt.Errorf("core: csv header: %w", err)
		}
		r.header = true
	}
	pids := make([]int, 0, len(report.PerPID))
	for pid := range report.PerPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		group := ""
		if r.resolve != nil {
			group = r.resolve(pid)
		}
		row := []string{
			strconv.FormatFloat(report.Timestamp.Seconds(), 'f', 3, 64),
			strconv.Itoa(pid),
			group,
			strconv.FormatFloat(report.PerPID[pid], 'f', 3, 64),
			strconv.FormatFloat(report.TotalWatts, 'f', 3, 64),
		}
		if err := r.writer.Write(row); err != nil {
			return fmt.Errorf("core: csv row: %w", err)
		}
	}
	r.writer.Flush()
	return r.writer.Error()
}

// JSONLinesReporter writes one JSON object per aggregated report (one line
// each), the format consumed by log pipelines.
type JSONLinesReporter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLinesReporter creates a JSON-lines reporter writing to w.
func NewJSONLinesReporter(w io.Writer) (*JSONLinesReporter, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil writer")
	}
	return &JSONLinesReporter{enc: json.NewEncoder(w)}, nil
}

// jsonReportLine is the serialised form of one aggregated report.
type jsonReportLine struct {
	TimestampSeconds float64            `json:"timestampSeconds"`
	SourceMode       string             `json:"sourceMode,omitempty"`
	IdleWatts        float64            `json:"idleWatts"`
	ActiveWatts      float64            `json:"activeWatts"`
	TotalWatts       float64            `json:"totalWatts"`
	MeasuredWatts    float64            `json:"measuredWatts,omitempty"`
	PerPID           map[string]float64 `json:"perPid"`
	PerGroup         map[string]float64 `json:"perGroup,omitempty"`
}

// Report writes one aggregated report as a JSON line.
func (r *JSONLinesReporter) Report(report AggregatedReport) error {
	line := jsonReportLine{
		TimestampSeconds: report.Timestamp.Seconds(),
		SourceMode:       report.SourceMode,
		IdleWatts:        report.IdleWatts,
		ActiveWatts:      report.ActiveWatts,
		TotalWatts:       report.TotalWatts,
		MeasuredWatts:    report.MeasuredWatts,
		PerPID:           make(map[string]float64, len(report.PerPID)),
		PerGroup:         report.PerGroup,
	}
	for pid, watts := range report.PerPID {
		line.PerPID[strconv.Itoa(pid)] = watts
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(line); err != nil {
		return fmt.Errorf("core: json report: %w", err)
	}
	return nil
}

// EnergyAccumulator is a Reporter that integrates per-process power over time
// into per-process (and per-group) energy, the quantity a billing or
// energy-budgeting system consumes.
type EnergyAccumulator struct {
	mu            sync.Mutex
	lastTimestamp time.Duration
	started       bool
	energyByPID   map[int]float64
	energyByGroup map[string]float64
	totalEnergy   float64
}

// NewEnergyAccumulator creates an empty accumulator.
func NewEnergyAccumulator() *EnergyAccumulator {
	return &EnergyAccumulator{
		energyByPID:   make(map[int]float64),
		energyByGroup: make(map[string]float64),
	}
}

// Report integrates one aggregated report.
func (a *EnergyAccumulator) Report(report AggregatedReport) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		a.started = true
		a.lastTimestamp = report.Timestamp
		return nil
	}
	window := report.Timestamp - a.lastTimestamp
	if window <= 0 {
		return fmt.Errorf("core: non-monotonic report timestamps (%v after %v)", report.Timestamp, a.lastTimestamp)
	}
	seconds := window.Seconds()
	for pid, watts := range report.PerPID {
		a.energyByPID[pid] += watts * seconds
	}
	for group, watts := range report.PerGroup {
		a.energyByGroup[group] += watts * seconds
	}
	a.totalEnergy += report.TotalWatts * seconds
	a.lastTimestamp = report.Timestamp
	return nil
}

// EnergyByPID returns a copy of the accumulated per-process energy (joules).
func (a *EnergyAccumulator) EnergyByPID() map[int]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]float64, len(a.energyByPID))
	for pid, j := range a.energyByPID {
		out[pid] = j
	}
	return out
}

// EnergyByGroup returns a copy of the accumulated per-group energy (joules).
func (a *EnergyAccumulator) EnergyByGroup() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.energyByGroup))
	for g, j := range a.energyByGroup {
		out[g] = j
	}
	return out
}

// TotalEnergyJoules returns the integrated machine energy estimate.
func (a *EnergyAccumulator) TotalEnergyJoules() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalEnergy
}
