package core

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file provides ready-made Reporter implementations, fulfilling the
// paper's description of the Reporter component: "converts the power
// estimations produced by the library into a suitable format". The facade
// wires them as additional subscribers of the aggregated-reports topic.

// ReporterOption customises a CSV or JSON-lines reporter.
type ReporterOption func(*reporterConfig)

type reporterConfig struct {
	buffered bool
	targets  bool
}

// WithBufferedWrites keeps rows in the reporter's in-memory buffer instead of
// pushing them to the underlying writer after every round. The owner must
// call Flush (or Close) once the pipeline is drained — register the reporter
// through WithFlushingReporter and Shutdown does it. This is the
// configuration file-backed reporters want: one write per buffer fill
// instead of one per sampling round.
func WithBufferedWrites() ReporterOption {
	return func(c *reporterConfig) { c.buffered = true }
}

// WithTargetRows switches the CSV schema from the per-PID layout to the
// target layout (seconds,kind,target,group,watts,total_watts): every row
// carries the target kind ("process", "cgroup", "vm") and its identity — the
// PID for processes, the hierarchy path for control groups, the VM name for
// virtual machines — and the per-cgroup and per-VM rollups are written next
// to the per-process rows.
func WithTargetRows() ReporterOption {
	return func(c *reporterConfig) { c.targets = true }
}

// CSVReporter writes one line per monitored target and round. The default
// schema is seconds,pid,group,watts,total_watts over the per-PID breakdown;
// WithTargetRows extends it with the target kind and the cgroup rollup.
type CSVReporter struct {
	mu       sync.Mutex
	buf      *bufio.Writer
	writer   *csv.Writer
	header   bool
	buffered bool
	targets  bool
	resolve  func(pid int) string
}

// NewCSVReporter creates a CSV reporter writing to w. The resolver (optional)
// maps PIDs to a human-readable group/application name.
func NewCSVReporter(w io.Writer, resolve func(pid int) string, opts ...ReporterOption) (*CSVReporter, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil writer")
	}
	var cfg reporterConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	buf := bufio.NewWriter(w)
	return &CSVReporter{
		buf:      buf,
		writer:   csv.NewWriter(buf),
		buffered: cfg.buffered,
		targets:  cfg.targets,
		resolve:  resolve,
	}, nil
}

// Report writes the rows of one aggregated report.
func (r *CSVReporter) Report(report AggregatedReport) error {
	// Resolve group names before taking the lock: resolve is a user-supplied
	// callback and must not run under r.mu (it may block, or call back into
	// the reporter and self-deadlock). It is immutable after construction, so
	// reading it unlocked is safe.
	pids := make([]int, 0, len(report.PerPID))
	for pid := range report.PerPID {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	groups := make(map[int]string, len(pids))
	if r.resolve != nil {
		for _, pid := range pids {
			groups[pid] = r.resolve(pid)
		}
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.header {
		header := []string{"seconds", "pid", "group", "watts", "total_watts"}
		if r.targets {
			header = []string{"seconds", "kind", "target", "group", "watts", "total_watts"}
		}
		if err := r.writer.Write(header); err != nil {
			return fmt.Errorf("core: csv header: %w", err)
		}
		r.header = true
	}
	seconds := strconv.FormatFloat(report.Timestamp.Seconds(), 'f', 3, 64)
	total := strconv.FormatFloat(report.TotalWatts, 'f', 3, 64)
	for _, pid := range pids {
		group := groups[pid]
		watts := strconv.FormatFloat(report.PerPID[pid], 'f', 3, 64)
		row := []string{seconds, strconv.Itoa(pid), group, watts, total}
		if r.targets {
			row = []string{seconds, "process", strconv.Itoa(pid), group, watts, total}
		}
		if err := r.writer.Write(row); err != nil {
			return fmt.Errorf("core: csv row: %w", err)
		}
	}
	if r.targets {
		paths := make([]string, 0, len(report.PerCgroup))
		for path := range report.PerCgroup {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			watts := strconv.FormatFloat(report.PerCgroup[path], 'f', 3, 64)
			if err := r.writer.Write([]string{seconds, "cgroup", path, "", watts, total}); err != nil {
				return fmt.Errorf("core: csv row: %w", err)
			}
		}
		names := make([]string, 0, len(report.PerVM))
		for name := range report.PerVM {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			watts := strconv.FormatFloat(report.PerVM[name], 'f', 3, 64)
			if err := r.writer.Write([]string{seconds, "vm", name, "", watts, total}); err != nil {
				return fmt.Errorf("core: csv row: %w", err)
			}
		}
	}
	if r.buffered {
		// csv.NewWriter over our bufio.Writer adopts it as its own buffer
		// (bufio.NewWriterSize returns a same-size *bufio.Writer unchanged),
		// so the rows are already sitting in the shared buffer and flushing
		// the csv layer here would push them to the underlying writer. They
		// stay put until Flush — or until the buffer fills, when bufio spills
		// complete bytes to the writer as any buffered file write would.
		return nil
	}
	r.writer.Flush()
	if err := r.writer.Error(); err != nil {
		return err
	}
	return r.buf.Flush()
}

// Flush pushes every buffered row to the underlying writer. Call it on
// shutdown paths when the reporter was created with WithBufferedWrites.
func (r *CSVReporter) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.writer.Flush()
	if err := r.writer.Error(); err != nil {
		return fmt.Errorf("core: csv flush: %w", err)
	}
	if err := r.buf.Flush(); err != nil {
		return fmt.Errorf("core: csv flush: %w", err)
	}
	return nil
}

// Close flushes the reporter. It does not close the underlying writer, which
// the reporter does not own.
func (r *CSVReporter) Close() error { return r.Flush() }

// JSONLinesReporter writes one JSON object per aggregated report (one line
// each), the format consumed by log pipelines.
type JSONLinesReporter struct {
	mu       sync.Mutex
	buf      *bufio.Writer
	enc      *json.Encoder
	buffered bool
}

// NewJSONLinesReporter creates a JSON-lines reporter writing to w.
func NewJSONLinesReporter(w io.Writer, opts ...ReporterOption) (*JSONLinesReporter, error) {
	if w == nil {
		return nil, fmt.Errorf("core: nil writer")
	}
	var cfg reporterConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	buf := bufio.NewWriter(w)
	return &JSONLinesReporter{buf: buf, enc: json.NewEncoder(buf), buffered: cfg.buffered}, nil
}

// jsonReportLine is the serialised form of one aggregated report.
type jsonReportLine struct {
	TimestampSeconds float64            `json:"timestampSeconds"`
	SourceMode       string             `json:"sourceMode,omitempty"`
	IdleWatts        float64            `json:"idleWatts"`
	ActiveWatts      float64            `json:"activeWatts"`
	TotalWatts       float64            `json:"totalWatts"`
	MeasuredWatts    float64            `json:"measuredWatts,omitempty"`
	PerPID           map[string]float64 `json:"perPid"`
	PerCgroup        map[string]float64 `json:"perCgroup,omitempty"`
	PerVM            map[string]float64 `json:"perVm,omitempty"`
	PerGroup         map[string]float64 `json:"perGroup,omitempty"`
}

// Report writes one aggregated report as a JSON line. Cgroup targets appear
// as the perCgroup object, keyed by hierarchy path.
func (r *JSONLinesReporter) Report(report AggregatedReport) error {
	line := jsonReportLine{
		TimestampSeconds: report.Timestamp.Seconds(),
		SourceMode:       report.SourceMode,
		IdleWatts:        report.IdleWatts,
		ActiveWatts:      report.ActiveWatts,
		TotalWatts:       report.TotalWatts,
		MeasuredWatts:    report.MeasuredWatts,
		PerPID:           make(map[string]float64, len(report.PerPID)),
		PerCgroup:        report.PerCgroup,
		PerVM:            report.PerVM,
		PerGroup:         report.PerGroup,
	}
	for pid, watts := range report.PerPID {
		line.PerPID[strconv.Itoa(pid)] = watts
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.enc.Encode(line); err != nil {
		return fmt.Errorf("core: json report: %w", err)
	}
	if r.buffered {
		return nil
	}
	return r.buf.Flush()
}

// Flush pushes every buffered line to the underlying writer. Call it on
// shutdown paths when the reporter was created with WithBufferedWrites.
func (r *JSONLinesReporter) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.buf.Flush(); err != nil {
		return fmt.Errorf("core: json flush: %w", err)
	}
	return nil
}

// Close flushes the reporter. It does not close the underlying writer, which
// the reporter does not own.
func (r *JSONLinesReporter) Close() error { return r.Flush() }

// EnergyAccumulator is a Reporter that integrates per-process power over time
// into per-process (and per-group) energy, the quantity a billing or
// energy-budgeting system consumes.
type EnergyAccumulator struct {
	mu            sync.Mutex
	lastTimestamp time.Duration
	started       bool
	energyByPID   map[int]float64
	energyByGroup map[string]float64
	totalEnergy   float64
}

// NewEnergyAccumulator creates an empty accumulator.
func NewEnergyAccumulator() *EnergyAccumulator {
	return &EnergyAccumulator{
		energyByPID:   make(map[int]float64),
		energyByGroup: make(map[string]float64),
	}
}

// Report integrates one aggregated report.
func (a *EnergyAccumulator) Report(report AggregatedReport) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started {
		a.started = true
		a.lastTimestamp = report.Timestamp
		return nil
	}
	window := report.Timestamp - a.lastTimestamp
	if window <= 0 {
		return fmt.Errorf("core: non-monotonic report timestamps (%v after %v)", report.Timestamp, a.lastTimestamp)
	}
	seconds := window.Seconds()
	for pid, watts := range report.PerPID {
		a.energyByPID[pid] += watts * seconds
	}
	for group, watts := range report.PerGroup {
		a.energyByGroup[group] += watts * seconds
	}
	a.totalEnergy += report.TotalWatts * seconds
	a.lastTimestamp = report.Timestamp
	return nil
}

// EnergyByPID returns a copy of the accumulated per-process energy (joules).
func (a *EnergyAccumulator) EnergyByPID() map[int]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[int]float64, len(a.energyByPID))
	for pid, j := range a.energyByPID {
		out[pid] = j
	}
	return out
}

// EnergyByGroup returns a copy of the accumulated per-group energy (joules).
func (a *EnergyAccumulator) EnergyByGroup() map[string]float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]float64, len(a.energyByGroup))
	for g, j := range a.energyByGroup {
		out[g] = j
	}
	return out
}

// TotalEnergyJoules returns the integrated machine energy estimate.
func (a *EnergyAccumulator) TotalEnergyJoules() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalEnergy
}
