package core

import (
	"math"
	"testing"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/machine"
	"powerapi/internal/source"
	"powerapi/internal/target"
	"powerapi/internal/workload"
)

// spawnLevels spawns one CPU-bound workload per demand level and returns the
// PIDs in spawn order.
func spawnLevels(t *testing.T, m *machine.Machine, levels ...float64) []int {
	t.Helper()
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	return pids
}

// TestCgroupRollupConservationBlendedSharded is the attribution-conservation
// acceptance case: nested cgroups under four shards in blended mode, with
// every member PID also monitored standalone. The per-target estimates must
// sum to the measured machine total within 1e-6, every group must be the
// exact sum of its recursive members, and a PID reported both standalone and
// inside a group must never be double-counted.
func TestCgroupRollupConservationBlendedSharded(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithShards(4), WithSources(source.ModeBlended), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnLevels(t, m, 1.0, 0.8, 0.6, 0.4, 0.2, 0.9)
	for pid, path := range map[int]string{
		pids[0]: "web", pids[1]: "web", pids[2]: "web/api", pids[3]: "db",
	} {
		if err := h.Add(path, pid); err != nil {
			t.Fatal(err)
		}
	}
	// Every PID is attached standalone AND four of them sit inside groups.
	if err := api.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		if _, err := m.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		r, err := api.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if r.MeasuredWatts <= 0 {
			t.Fatalf("round %d: no RAPL measurement", round)
		}
		var sum float64
		for _, watts := range r.PerPID {
			sum += watts
		}
		if math.Abs(sum-r.MeasuredWatts) > 1e-6 {
			t.Fatalf("round %d: per-PID sum %.9f != measured %.9f", round, sum, r.MeasuredWatts)
		}
		if math.Abs(r.ActiveWatts-r.MeasuredWatts) > 1e-9 {
			t.Fatalf("round %d: active %.9f != measured %.9f", round, r.ActiveWatts, r.MeasuredWatts)
		}
		web := r.PerPID[pids[0]] + r.PerPID[pids[1]] + r.PerPID[pids[2]]
		if math.Abs(r.PerCgroup["web"]-web) > 1e-9 {
			t.Fatalf("round %d: web rollup %.9f != member sum %.9f", round, r.PerCgroup["web"], web)
		}
		if math.Abs(r.PerCgroup["web/api"]-r.PerPID[pids[2]]) > 1e-9 {
			t.Fatalf("round %d: nested web/api %.9f != member %.9f", round, r.PerCgroup["web/api"], r.PerPID[pids[2]])
		}
		if math.Abs(r.PerCgroup["db"]-r.PerPID[pids[3]]) > 1e-9 {
			t.Fatalf("round %d: db rollup %.9f != member %.9f", round, r.PerCgroup["db"], r.PerPID[pids[3]])
		}
		// No double counting: the top-level groups plus the ungrouped PIDs
		// partition the attributed machine power exactly.
		partition := r.PerCgroup["web"] + r.PerCgroup["db"] + r.PerPID[pids[4]] + r.PerPID[pids[5]]
		if math.Abs(partition-r.ActiveWatts) > 1e-6 {
			t.Fatalf("round %d: groups+ungrouped %.9f != active %.9f", round, partition, r.ActiveWatts)
		}
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

func TestAttachCgroupTargetMonitorsMembers(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithShards(4), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnLevels(t, m, 0.9, 0.7, 0.5, 0.3)
	for pid, path := range map[int]string{pids[0]: "web", pids[1]: "web", pids[2]: "web/api"} {
		if err := h.Add(path, pid); err != nil {
			t.Fatal(err)
		}
	}
	// Attaching the group monitors its member processes, descendants included;
	// pids[3] stays outside.
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if got := api.Monitored(); len(got) != 3 || got[0] != pids[0] || got[1] != pids[1] || got[2] != pids[2] {
		t.Fatalf("Monitored() = %v, want the members of web", got)
	}
	if got := api.MonitoredTargets(); len(got) != 1 || got[0] != target.Cgroup("web") {
		t.Fatalf("MonitoredTargets() = %v", got)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPID) != 3 {
		t.Fatalf("PerPID = %v, want the 3 members", r.PerPID)
	}
	if _, monitored := r.PerPID[pids[3]]; monitored {
		t.Fatal("the outsider PID must not be monitored")
	}
	sum := r.PerPID[pids[0]] + r.PerPID[pids[1]] + r.PerPID[pids[2]]
	if math.Abs(r.PerCgroup["web"]-sum) > 1e-9 || math.Abs(r.ActiveWatts-sum) > 1e-9 {
		t.Fatalf("web rollup %.9f, active %.9f, member sum %.9f", r.PerCgroup["web"], r.ActiveWatts, sum)
	}
	// Detaching the group detaches the members.
	if err := api.DetachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if got := api.Monitored(); len(got) != 0 {
		t.Fatalf("Monitored() after detach = %v", got)
	}
	if err := api.DetachTargets(target.Cgroup("web")); err == nil {
		t.Fatal("detaching twice should fail")
	}
}

func TestAttachTargetValidation(t *testing.T) {
	m := newTestMachine(t)
	bare := newTestAPI(t, m)
	if err := bare.AttachTargets(target.Cgroup("web")); err == nil {
		t.Fatal("cgroup target without WithCgroups should fail")
	}
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if err := api.AttachTargets(target.Cgroup("nope")); err == nil {
		t.Fatal("unknown cgroup should fail")
	}
	if err := api.AttachTargets(target.Machine()); err == nil {
		t.Fatal("machine target should fail: the machine-scope source monitors it")
	}
	if err := api.AttachTargets(target.Target{}); err == nil {
		t.Fatal("invalid target should fail")
	}
}

// TestCgroupMemberExitRepartitionsMidRun is the router re-partitioning case:
// when a member of a monitored cgroup exits mid-run, the next Collect prunes
// it from the hierarchy and detaches it from its Sensor shard before the
// round's tick; members that join mid-run are attached the same way.
func TestCgroupMemberExitRepartitionsMidRun(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithShards(4), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pids := spawnLevels(t, m, 0.9, 0.6, 0.3)
	for _, pid := range pids {
		if err := h.Add("web", pid); err != nil {
			t.Fatal(err)
		}
	}
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r1, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.PerPID) != 3 {
		t.Fatalf("round 1 PerPID = %v", r1.PerPID)
	}

	if err := m.Processes().Kill(pids[1], m.Now()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r2, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, stale := r2.PerPID[pids[1]]; stale {
		t.Fatal("exited member still attributed after Collect")
	}
	if got := api.Monitored(); len(got) != 2 || got[0] != pids[0] || got[1] != pids[2] {
		t.Fatalf("Monitored() after exit = %v", got)
	}
	if _, member := h.LeafOf(pids[1]); member {
		t.Fatal("exited member must be pruned from the hierarchy")
	}
	if math.Abs(r2.PerCgroup["web"]-(r2.PerPID[pids[0]]+r2.PerPID[pids[2]])) > 1e-9 {
		t.Fatalf("web rollup %.9f != surviving members", r2.PerCgroup["web"])
	}

	// A member joining mid-run is attached on the next Collect. Its counters
	// start at attach, so the first round after the join reports it at zero
	// and the round after that attributes its work.
	joiner := spawnLevels(t, m, 0.8)[0]
	if err := h.Add("web", joiner); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r3, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if _, attached := r3.PerPID[joiner]; !attached {
		t.Fatalf("joined member not monitored: %v", r3.PerPID)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r4, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if r4.PerPID[joiner] <= 0 {
		t.Fatalf("joined member not attributed after a full round: %v", r4.PerPID)
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

func TestCgroupDetachKeepsStandaloneProcesses(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pid := spawnLevels(t, m, 0.8)[0]
	if err := h.Add("web", pid); err != nil {
		t.Fatal(err)
	}
	if err := api.Attach(pid); err != nil {
		t.Fatal(err)
	}
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	// Dropping the group keeps the standalone attachment alive...
	if err := api.DetachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if got := api.Monitored(); len(got) != 1 || got[0] != pid {
		t.Fatalf("Monitored() = %v, want the standalone pid", got)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if r.PerPID[pid] <= 0 {
		t.Fatalf("standalone pid not attributed: %v", r.PerPID)
	}
	// ...and vice versa: detaching the standalone attachment keeps the pid
	// monitored as long as a monitored group holds it.
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if err := api.Detach(pid); err != nil {
		t.Fatal(err)
	}
	if got := api.Monitored(); len(got) != 1 || got[0] != pid {
		t.Fatalf("Monitored() = %v, want the group member", got)
	}
	if err := api.Detach(pid); err == nil {
		t.Fatal("the pid is no longer attached standalone; detaching again should fail")
	}
}

// TestCgroupScopeSourceDirectEstimates runs the pipeline with a cgroup-scope
// attribution source: whole groups are sampled as single units, their direct
// estimates are normalized against the measured total and credited up the
// hierarchy.
func TestCgroupScopeSourceDirectEstimates(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	pids := spawnLevels(t, m, 0.9, 0.5, 0.7)
	for pid, path := range map[int]string{pids[0]: "web/api", pids[1]: "web/api", pids[2]: "db"} {
		if err := h.Add(path, pid); err != nil {
			t.Fatal(err)
		}
	}
	api, err := New(m, testModel(),
		WithSources(source.ModeProcfs),
		WithSourceFactories(SourceFactories{
			Attribution: func(int) (source.Source, error) { return source.NewCgroups(m, h) },
		}),
		WithCgroups(h),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	if err := api.AttachTargets(target.Cgroup("web/api"), target.Cgroup("db")); err != nil {
		t.Fatal(err)
	}
	if got := api.MonitoredTargets(); len(got) != 2 {
		t.Fatalf("MonitoredTargets() = %v", got)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPID) != 0 {
		t.Fatalf("cgroup-scope sensing should produce no per-PID rows: %v", r.PerPID)
	}
	if r.MeasuredWatts <= 0 {
		t.Fatal("procfs mode should measure a utilisation total")
	}
	attached := r.PerCgroup["web/api"] + r.PerCgroup["db"]
	if math.Abs(attached-r.MeasuredWatts) > 1e-6 {
		t.Fatalf("attached groups %.9f != measured %.9f", attached, r.MeasuredWatts)
	}
	// The parent group is credited with its descendant's direct estimate.
	if math.Abs(r.PerCgroup["web"]-r.PerCgroup["web/api"]) > 1e-9 {
		t.Fatalf("ancestor web %.9f != web/api %.9f", r.PerCgroup["web"], r.PerCgroup["web/api"])
	}
	// The busier slice draws more power.
	if r.PerCgroup["web/api"] <= r.PerCgroup["db"] {
		t.Fatalf("two-process web/api (%.2f W) should outdraw db (%.2f W)",
			r.PerCgroup["web/api"], r.PerCgroup["db"])
	}
	// A group overlapping an already-monitored one (ancestor or descendant)
	// would be sampled twice by a cgroup-scope source; the attach refuses.
	if err := h.Create("web"); err != nil {
		t.Fatal(err)
	}
	if err := api.AttachTargets(target.Cgroup("web")); err == nil {
		t.Fatal("attaching an ancestor of a monitored group should fail")
	}
	if err := api.AttachTargets(target.Cgroup("web/api")); err == nil {
		t.Fatal("attaching a monitored group twice should fail as an overlap")
	}
	if api.ErrorCount() != 0 {
		t.Fatalf("pipeline errors: %v", api.LastError())
	}
}

// TestCollectPrunesUnknownMembers covers the robustness of the pre-round
// membership sync: a PID the machine does not know (a typo'd spec, a process
// reaped between rounds) is pruned from the hierarchy instead of wedging
// every subsequent Collect on an attach error.
func TestCollectPrunesUnknownMembers(t *testing.T) {
	m := newTestMachine(t)
	h := cgroup.NewHierarchy()
	api, err := New(m, testModel(), WithCgroups(h))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(api.Shutdown)
	pid := spawnLevels(t, m, 0.5)[0]
	if err := h.Add("web", pid); err != nil {
		t.Fatal(err)
	}
	if err := api.AttachTargets(target.Cgroup("web")); err != nil {
		t.Fatal(err)
	}
	if err := h.Add("web", 424242); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := api.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PerPID) != 1 || r.PerPID[pid] <= 0 {
		t.Fatalf("PerPID = %v, want only the real member", r.PerPID)
	}
	if _, member := h.LeafOf(424242); member {
		t.Fatal("unknown member must be pruned from the hierarchy")
	}
}
