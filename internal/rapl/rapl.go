// Package rapl simulates Intel's Running Average Power Limit (RAPL) energy
// interface: per-socket MSR-style energy-status counters for the package and
// DRAM power domains.
//
// Real RAPL exposes a 32-bit register per domain (MSR_PKG_ENERGY_STATUS,
// MSR_DRAM_ENERGY_STATUS) counting energy in units of 2^-ESU joules. The
// register wraps around every few minutes under load, and the hardware only
// refreshes it roughly once per millisecond. This package reproduces those
// artefacts faithfully — 32-bit wraparound, energy-unit quantization and
// update-period latching — so that monitoring code built on top of it has to
// cope with them exactly like telegraf's intel_powerstat or Kepler do on real
// hardware.
//
// The energy the counters integrate comes from a Reader. In production the
// Reader adapts the simulated machine's hidden ground-truth accounting
// (NewMachineReader); like the PowerSpy wall meter, the RAPL meter is a
// *sensor* over the hidden truth, so estimation code reading it stays honest.
package rapl

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"powerapi/internal/machine"
)

// ErrUnsupported is returned when building a machine-backed meter for a
// processor generation without RAPL MSRs (pre-Sandy Bridge Intel, the AMD
// comparator) — reproducing the architecture dependence the paper
// criticises, exactly like powermeter.NewRAPL does.
var ErrUnsupported = errors.New("rapl: processor does not expose RAPL")

// Domain identifies one RAPL power domain of a socket.
type Domain int

// RAPL power domains.
const (
	// DomainPackage is the whole CPU package (cores + uncore), the
	// MSR_PKG_ENERGY_STATUS domain.
	DomainPackage Domain = iota + 1
	// DomainDRAM is the memory subsystem, the MSR_DRAM_ENERGY_STATUS domain.
	DomainDRAM
)

// String implements fmt.Stringer.
func (d Domain) String() string {
	switch d {
	case DomainPackage:
		return "package"
	case DomainDRAM:
		return "dram"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// Valid reports whether d is a known domain.
func (d Domain) Valid() bool { return d == DomainPackage || d == DomainDRAM }

// Reader supplies the cumulative ground-truth energy (joules) the simulated
// MSRs latch from, plus the simulated clock driving the update period.
type Reader interface {
	// CumulativeJoules returns the energy the given socket's domain has
	// consumed since machine start.
	CumulativeJoules(socket int, domain Domain) (float64, error)
	// Now returns the current simulated time.
	Now() time.Duration
}

// DefaultEnergyUnitJoules is the Sandy Bridge energy status unit, 2^-16 J
// (~15.3 µJ), the value real firmware reports in MSR_RAPL_POWER_UNIT.
const DefaultEnergyUnitJoules = 1.0 / (1 << 16)

// DefaultUpdatePeriod mirrors the ~1 ms refresh cadence of the hardware
// energy counters.
const DefaultUpdatePeriod = time.Millisecond

// Config parameterises a simulated RAPL meter.
type Config struct {
	// Sockets is the number of CPU sockets exposing counters (>= 1).
	Sockets int
	// EnergyUnitJoules is the value of one counter increment (defaults to
	// DefaultEnergyUnitJoules).
	EnergyUnitJoules float64
	// UpdatePeriod is how often the counters refresh in simulated time; reads
	// within the same period return the latched value (defaults to
	// DefaultUpdatePeriod). Zero keeps the default; a negative value disables
	// latching so every read reflects the instantaneous energy.
	UpdatePeriod time.Duration
}

// Meter is the simulated RAPL interface of one machine: a bank of 32-bit
// energy-status counters, one per (socket, domain). It is safe for concurrent
// use.
type Meter struct {
	reader Reader
	cfg    Config

	mu    sync.Mutex
	latch map[latchKey]latchState
}

type latchKey struct {
	socket int
	domain Domain
}

type latchState struct {
	raw uint32
	at  time.Duration
	set bool
}

// NewMeter creates a RAPL meter over the given energy reader.
func NewMeter(r Reader, cfg Config) (*Meter, error) {
	if r == nil {
		return nil, errors.New("rapl: nil reader")
	}
	if cfg.Sockets < 1 {
		return nil, fmt.Errorf("rapl: socket count must be at least 1, got %d", cfg.Sockets)
	}
	if cfg.EnergyUnitJoules == 0 {
		cfg.EnergyUnitJoules = DefaultEnergyUnitJoules
	}
	if cfg.EnergyUnitJoules < 0 {
		return nil, fmt.Errorf("rapl: negative energy unit %v", cfg.EnergyUnitJoules)
	}
	if cfg.UpdatePeriod == 0 {
		cfg.UpdatePeriod = DefaultUpdatePeriod
	}
	return &Meter{reader: r, cfg: cfg, latch: make(map[latchKey]latchState)}, nil
}

// Sockets returns the number of sockets the meter exposes.
func (m *Meter) Sockets() int { return m.cfg.Sockets }

// EnergyUnitJoules returns the joules represented by one counter increment.
func (m *Meter) EnergyUnitJoules() float64 { return m.cfg.EnergyUnitJoules }

// ReadRaw returns the current raw 32-bit energy-status value of one domain.
// The value is quantized to whole energy units, wraps at 2^32 like the
// hardware register, and refreshes at most once per update period (reads in
// between return the latched value).
func (m *Meter) ReadRaw(socket int, domain Domain) (uint32, error) {
	if socket < 0 || socket >= m.cfg.Sockets {
		return 0, fmt.Errorf("rapl: unknown socket %d (machine has %d)", socket, m.cfg.Sockets)
	}
	if !domain.Valid() {
		return 0, fmt.Errorf("rapl: invalid domain %v", domain)
	}
	key := latchKey{socket: socket, domain: domain}
	now := m.reader.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if st, ok := m.latch[key]; ok && st.set && m.cfg.UpdatePeriod > 0 && now-st.at < m.cfg.UpdatePeriod {
		return st.raw, nil
	}
	//powerapi:allow locklint reader is a leaf driver; the latch lock deliberately serializes hardware reads
	joules, err := m.reader.CumulativeJoules(socket, domain)
	if err != nil {
		return 0, fmt.Errorf("rapl: read %v energy of socket %d: %w", domain, socket, err)
	}
	if joules < 0 {
		return 0, fmt.Errorf("rapl: negative cumulative energy %v for %v of socket %d", joules, domain, socket)
	}
	// Quantize to whole units, then truncate to the 32-bit register width:
	// the modulo is the wraparound every consumer of real RAPL must unwrap.
	raw := uint32(uint64(joules/m.cfg.EnergyUnitJoules) & 0xFFFFFFFF)
	m.latch[key] = latchState{raw: raw, at: now, set: true}
	return raw, nil
}

// Counter tracks one (socket, domain) energy-status register across reads,
// unwrapping the 32-bit wraparound into monotonically accumulating joules —
// the delta discipline every real RAPL consumer implements.
type Counter struct {
	meter  *Meter
	socket int
	domain Domain

	mu   sync.Mutex
	last uint32
}

// OpenCounter opens a delta-tracking counter over one domain, baselining it
// at the current register value.
func (m *Meter) OpenCounter(socket int, domain Domain) (*Counter, error) {
	raw, err := m.ReadRaw(socket, domain)
	if err != nil {
		return nil, err
	}
	return &Counter{meter: m, socket: socket, domain: domain, last: raw}, nil
}

// Socket returns the socket the counter observes.
func (c *Counter) Socket() int { return c.socket }

// Domain returns the domain the counter observes.
func (c *Counter) Domain() Domain { return c.domain }

// DeltaJoules returns the energy consumed since the previous call (or since
// OpenCounter), correctly unwrapping a single 32-bit wraparound in between.
// Two wraps within one sampling window are indistinguishable from one, as on
// real hardware — sample faster than the wrap period (minutes at realistic
// power draws) to avoid it.
func (c *Counter) DeltaJoules() (float64, error) {
	raw, err := c.meter.ReadRaw(c.socket, c.domain)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Unsigned subtraction wraps modulo 2^32, which is exactly the unwrap.
	delta := raw - c.last
	c.last = raw
	return float64(delta) * c.meter.cfg.EnergyUnitJoules, nil
}

// machineReader adapts the simulated machine's hidden energy accounting to
// the Reader interface, splitting the machine totals evenly across sockets
// (the simulation schedules symmetrically, so an even split is the correct
// steady-state view).
type machineReader struct {
	m       *machine.Machine
	sockets float64
}

// NewMachineReader exposes a machine's package and DRAM energy accounting as
// a RAPL energy Reader.
func NewMachineReader(m *machine.Machine) (Reader, error) {
	if m == nil {
		return nil, errors.New("rapl: nil machine")
	}
	return &machineReader{m: m, sockets: float64(m.Spec().Sockets)}, nil
}

// CumulativeJoules implements Reader.
func (r *machineReader) CumulativeJoules(socket int, domain Domain) (float64, error) {
	switch domain {
	case DomainPackage:
		return r.m.CPUEnergyJoules() / r.sockets, nil
	case DomainDRAM:
		return r.m.DRAMEnergyJoules() / r.sockets, nil
	default:
		return 0, fmt.Errorf("rapl: invalid domain %v", domain)
	}
}

// Now implements Reader.
func (r *machineReader) Now() time.Duration { return r.m.Now() }

// NewMachineMeter builds the standard RAPL meter of a simulated machine: one
// counter bank per socket with the Sandy Bridge energy unit and a 1 ms update
// period. It fails with ErrUnsupported on specs without RAPL MSRs.
func NewMachineMeter(m *machine.Machine) (*Meter, error) {
	reader, err := NewMachineReader(m)
	if err != nil {
		return nil, err
	}
	if !m.Spec().HasRAPL {
		return nil, fmt.Errorf("%w: %s", ErrUnsupported, m.Spec().String())
	}
	return NewMeter(reader, Config{Sockets: m.Spec().Sockets})
}
