package rapl

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

// fakeReader is a controllable energy source for unit tests.
type fakeReader struct {
	now    time.Duration
	energy map[latchKey]float64
	err    error
}

func newFakeReader() *fakeReader {
	return &fakeReader{energy: make(map[latchKey]float64)}
}

func (f *fakeReader) CumulativeJoules(socket int, domain Domain) (float64, error) {
	if f.err != nil {
		return 0, f.err
	}
	return f.energy[latchKey{socket: socket, domain: domain}], nil
}

func (f *fakeReader) Now() time.Duration { return f.now }

func (f *fakeReader) set(socket int, domain Domain, joules float64) {
	f.energy[latchKey{socket: socket, domain: domain}] = joules
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(nil, Config{Sockets: 1}); err == nil {
		t.Fatal("nil reader should fail")
	}
	if _, err := NewMeter(newFakeReader(), Config{Sockets: 0}); err == nil {
		t.Fatal("zero sockets should fail")
	}
	if _, err := NewMeter(newFakeReader(), Config{Sockets: 1, EnergyUnitJoules: -1}); err == nil {
		t.Fatal("negative energy unit should fail")
	}
	m, err := NewMeter(newFakeReader(), Config{Sockets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sockets() != 2 {
		t.Fatalf("Sockets() = %d, want 2", m.Sockets())
	}
	if m.EnergyUnitJoules() != DefaultEnergyUnitJoules {
		t.Fatalf("EnergyUnitJoules() = %v, want default %v", m.EnergyUnitJoules(), DefaultEnergyUnitJoules)
	}
	if _, err := m.ReadRaw(2, DomainPackage); err == nil {
		t.Fatal("out-of-range socket should fail")
	}
	if _, err := m.ReadRaw(0, Domain(99)); err == nil {
		t.Fatal("invalid domain should fail")
	}
}

func TestReadRawQuantizesToEnergyUnits(t *testing.T) {
	r := newFakeReader()
	meter, err := NewMeter(r, Config{Sockets: 1, EnergyUnitJoules: 0.5, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 1.74 J at 0.5 J/unit quantizes down to 3 units, not 3.48.
	r.set(0, DomainPackage, 1.74)
	raw, err := meter.ReadRaw(0, DomainPackage)
	if err != nil {
		t.Fatal(err)
	}
	if raw != 3 {
		t.Fatalf("raw = %d, want 3 (quantized down)", raw)
	}
	// Sub-unit energy growth is invisible until it crosses the next unit.
	r.set(0, DomainPackage, 1.99)
	if raw, _ := meter.ReadRaw(0, DomainPackage); raw != 3 {
		t.Fatalf("raw = %d, want 3 (still below the 4th unit)", raw)
	}
	r.set(0, DomainPackage, 2.01)
	if raw, _ := meter.ReadRaw(0, DomainPackage); raw != 4 {
		t.Fatalf("raw = %d, want 4", raw)
	}
}

func TestReadRawLatchesWithinUpdatePeriod(t *testing.T) {
	r := newFakeReader()
	meter, err := NewMeter(r, Config{Sockets: 1, EnergyUnitJoules: 1, UpdatePeriod: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.set(0, DomainPackage, 10)
	if raw, _ := meter.ReadRaw(0, DomainPackage); raw != 10 {
		t.Fatalf("raw = %d, want 10", raw)
	}
	// Energy moves, but within the same update period the latched value wins.
	r.set(0, DomainPackage, 25)
	r.now += 400 * time.Microsecond
	if raw, _ := meter.ReadRaw(0, DomainPackage); raw != 10 {
		t.Fatalf("raw = %d, want latched 10 inside the update period", raw)
	}
	// Crossing the period refreshes the latch.
	r.now += 700 * time.Microsecond
	if raw, _ := meter.ReadRaw(0, DomainPackage); raw != 25 {
		t.Fatalf("raw = %d, want refreshed 25 after the update period", raw)
	}
}

func TestCounterUnwrapsWraparound(t *testing.T) {
	r := newFakeReader()
	// 1 J per unit makes the register wrap every 2^32 J.
	meter, err := NewMeter(r, Config{Sockets: 1, EnergyUnitJoules: 1, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	const wrap = float64(1 << 32)
	// Start just below the wrap point.
	r.set(0, DomainPackage, wrap-100)
	c, err := meter.OpenCounter(0, DomainPackage)
	if err != nil {
		t.Fatal(err)
	}
	// Cross the 32-bit boundary: raw goes 4294967196 -> 150, but the true
	// delta is 250 J.
	r.set(0, DomainPackage, wrap+150)
	delta, err := c.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-250) > 1e-9 {
		t.Fatalf("delta across wraparound = %v J, want 250", delta)
	}
	// A second, wrap-free delta still works.
	r.set(0, DomainPackage, wrap+400)
	delta, err = c.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(delta-250) > 1e-9 {
		t.Fatalf("plain delta = %v J, want 250", delta)
	}
}

func TestCounterDeltaQuantizationNeverLosesEnergy(t *testing.T) {
	r := newFakeReader()
	meter, err := NewMeter(r, Config{Sockets: 1, EnergyUnitJoules: 0.25, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := meter.OpenCounter(0, DomainPackage)
	if err != nil {
		t.Fatal(err)
	}
	// Feed energy in increments smaller than a unit: individual deltas are
	// quantized, but the running total never drifts by more than one unit.
	var total, reported float64
	for i := 0; i < 100; i++ {
		total += 0.11
		r.set(0, DomainPackage, total)
		d, err := c.DeltaJoules()
		if err != nil {
			t.Fatal(err)
		}
		reported += d
	}
	if math.Abs(total-reported) > 0.25 {
		t.Fatalf("reported %v J of %v J true; quantization drift exceeds one unit", reported, total)
	}
}

func TestPerSocketDomainsAreIndependent(t *testing.T) {
	r := newFakeReader()
	meter, err := NewMeter(r, Config{Sockets: 2, EnergyUnitJoules: 1, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	r.set(0, DomainPackage, 100)
	r.set(0, DomainDRAM, 10)
	r.set(1, DomainPackage, 200)
	r.set(1, DomainDRAM, 20)
	for _, tc := range []struct {
		socket int
		domain Domain
		want   uint32
	}{
		{0, DomainPackage, 100},
		{0, DomainDRAM, 10},
		{1, DomainPackage, 200},
		{1, DomainDRAM, 20},
	} {
		raw, err := meter.ReadRaw(tc.socket, tc.domain)
		if err != nil {
			t.Fatal(err)
		}
		if raw != tc.want {
			t.Fatalf("socket %d %v = %d, want %d", tc.socket, tc.domain, raw, tc.want)
		}
	}
}

func TestReaderErrorsPropagate(t *testing.T) {
	r := newFakeReader()
	meter, err := NewMeter(r, Config{Sockets: 1, UpdatePeriod: -1})
	if err != nil {
		t.Fatal(err)
	}
	r.err = fmt.Errorf("msr read stalled")
	if _, err := meter.ReadRaw(0, DomainPackage); err == nil {
		t.Fatal("reader error should propagate")
	}
}

func TestMachineMeterTracksPackagePower(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	meter, err := NewMachineMeter(m)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.CPUStress(0.9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	pkg, err := meter.OpenCounter(0, DomainPackage)
	if err != nil {
		t.Fatal(err)
	}
	dram, err := meter.OpenCounter(0, DomainDRAM)
	if err != nil {
		t.Fatal(err)
	}
	startPkgJ := m.CPUEnergyJoules()
	window := 2 * time.Second
	if _, err := m.Run(window); err != nil {
		t.Fatal(err)
	}
	pkgJ, err := pkg.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	dramJ, err := dram.DeltaJoules()
	if err != nil {
		t.Fatal(err)
	}
	trueJ := m.CPUEnergyJoules() - startPkgJ
	if math.Abs(pkgJ-trueJ) > 1e-3 {
		t.Fatalf("RAPL package energy %v J, ground truth %v J", pkgJ, trueJ)
	}
	if dramJ <= 0 {
		t.Fatalf("DRAM energy %v J, want > 0 (refresh power alone accrues)", dramJ)
	}
	if dramJ >= pkgJ {
		t.Fatalf("DRAM energy %v J should stay below package energy %v J under a CPU-bound load", dramJ, pkgJ)
	}
	if watts := pkgJ / window.Seconds(); watts < 5 || watts > 120 {
		t.Fatalf("implied package power %.1f W implausible", watts)
	}
}

func TestMachineMeterRequiresRAPLSupport(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Spec = cpu.IntelCore2DuoE6600() // pre-Sandy Bridge: no RAPL MSRs
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMachineMeter(m); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("NewMachineMeter on a pre-RAPL spec = %v, want ErrUnsupported", err)
	}
}

func TestDomainString(t *testing.T) {
	if DomainPackage.String() != "package" || DomainDRAM.String() != "dram" {
		t.Fatal("domain names changed")
	}
	if Domain(42).Valid() {
		t.Fatal("unknown domain should be invalid")
	}
}
