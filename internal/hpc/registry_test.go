package hpc

import (
	"sync"
	"testing"
)

func TestRegistryAccumulateAndRead(t *testing.T) {
	r := NewRegistry()
	if err := r.Accumulate(100, 0, Counts{Instructions: 10, CacheMisses: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Accumulate(100, 1, Counts{Instructions: 20}); err != nil {
		t.Fatal(err)
	}
	if err := r.Accumulate(200, 0, Counts{Instructions: 5}); err != nil {
		t.Fatal(err)
	}

	if got := r.ReadPID(100)[Instructions]; got != 30 {
		t.Fatalf("ReadPID(100) instructions = %d, want 30", got)
	}
	if got := r.ReadPIDOnCPU(100, 1)[Instructions]; got != 20 {
		t.Fatalf("ReadPIDOnCPU(100,1) = %d, want 20", got)
	}
	if got := r.ReadCPU(0)[Instructions]; got != 15 {
		t.Fatalf("ReadCPU(0) = %d, want 15", got)
	}
	if got := r.ReadSystem()[Instructions]; got != 35 {
		t.Fatalf("ReadSystem() = %d, want 35", got)
	}
}

func TestRegistryAccumulateInvalidCPU(t *testing.T) {
	r := NewRegistry()
	if err := r.Accumulate(1, -1, Counts{Instructions: 1}); err == nil {
		t.Fatal("negative cpu should be rejected")
	}
}

func TestRegistryWildcardRead(t *testing.T) {
	r := NewRegistry()
	_ = r.Accumulate(1, 0, Counts{Instructions: 10})
	_ = r.Accumulate(2, 1, Counts{Instructions: 7})

	tests := []struct {
		name     string
		pid, cpu int
		want     uint64
	}{
		{name: "system wide", pid: AllPIDs, cpu: AllCPUs, want: 17},
		{name: "one cpu all pids", pid: AllPIDs, cpu: 1, want: 7},
		{name: "one pid all cpus", pid: 1, cpu: AllCPUs, want: 10},
		{name: "specific", pid: 2, cpu: 1, want: 7},
		{name: "missing pid", pid: 99, cpu: AllCPUs, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.Read(tt.pid, tt.cpu)[Instructions]; got != tt.want {
				t.Fatalf("Read(%d,%d) = %d, want %d", tt.pid, tt.cpu, got, tt.want)
			}
		})
	}
}

func TestRegistryReadEventMatchesRead(t *testing.T) {
	// ReadEvent is the allocation-free fast path of Read(...).Get(event); the
	// two must agree under every wildcard combination.
	r := NewRegistry()
	_ = r.Accumulate(1, 0, Counts{Instructions: 10, Cycles: 3})
	_ = r.Accumulate(1, 1, Counts{Instructions: 5})
	_ = r.Accumulate(2, 1, Counts{Instructions: 7})

	scopes := []struct{ pid, cpu int }{
		{AllPIDs, AllCPUs}, {AllPIDs, 0}, {AllPIDs, 1}, {AllPIDs, 9},
		{1, AllCPUs}, {2, AllCPUs}, {1, 0}, {1, 1}, {2, 0}, {99, AllCPUs}, {99, 3},
	}
	for _, scope := range scopes {
		for _, event := range []Event{Instructions, Cycles, CacheMisses} {
			want := r.Read(scope.pid, scope.cpu).Get(event)
			if got := r.ReadEvent(scope.pid, scope.cpu, event); got != want {
				t.Fatalf("ReadEvent(%d,%d,%v) = %d, Read().Get() = %d", scope.pid, scope.cpu, event, got, want)
			}
		}
	}
}

func TestRegistryIdleWorkNotAttributedToPID(t *testing.T) {
	r := NewRegistry()
	// Kernel / idle work on cpu 0 (pid wildcard).
	_ = r.Accumulate(AllPIDs, 0, Counts{Cycles: 100})
	if got := len(r.PIDs()); got != 0 {
		t.Fatalf("idle work should not create a pid entry, got %d pids", got)
	}
	if got := r.ReadCPU(0)[Cycles]; got != 100 {
		t.Fatalf("ReadCPU(0) cycles = %d, want 100", got)
	}
	if got := r.ReadSystem()[Cycles]; got != 100 {
		t.Fatalf("ReadSystem cycles = %d, want 100", got)
	}
}

func TestRegistryForget(t *testing.T) {
	r := NewRegistry()
	_ = r.Accumulate(1, 0, Counts{Instructions: 10})
	r.Forget(1)
	if got := r.ReadPID(1)[Instructions]; got != 0 {
		t.Fatalf("after Forget, ReadPID = %d, want 0", got)
	}
	// System totals are preserved: the work did happen.
	if got := r.ReadSystem()[Instructions]; got != 10 {
		t.Fatalf("system totals must survive Forget, got %d", got)
	}
}

func TestRegistryPIDs(t *testing.T) {
	r := NewRegistry()
	_ = r.Accumulate(5, 0, Counts{Instructions: 1})
	_ = r.Accumulate(9, 1, Counts{Instructions: 1})
	pids := r.PIDs()
	if len(pids) != 2 {
		t.Fatalf("PIDs() = %v, want 2 entries", pids)
	}
	seen := map[int]bool{}
	for _, p := range pids {
		seen[p] = true
	}
	if !seen[5] || !seen[9] {
		t.Fatalf("PIDs() = %v, want {5,9}", pids)
	}
}

func TestRegistryConcurrentAccumulate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers = 8
	const perWorker = 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = r.Accumulate(pid, pid%2, Counts{Instructions: 1})
			}
		}(w)
	}
	wg.Wait()
	if got := r.ReadSystem()[Instructions]; got != workers*perWorker {
		t.Fatalf("system instructions = %d, want %d", got, workers*perWorker)
	}
}

func TestRegistryMonotonicSystemCounts(t *testing.T) {
	r := NewRegistry()
	var last uint64
	for i := 0; i < 100; i++ {
		_ = r.Accumulate(1, 0, Counts{Cycles: uint64(i % 7)})
		got := r.ReadSystem()[Cycles]
		if got < last {
			t.Fatalf("system counter went backwards: %d -> %d", last, got)
		}
		last = got
	}
}
