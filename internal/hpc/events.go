// Package hpc simulates the Hardware Performance Counter (HPC) subsystem the
// paper relies on. The real PowerAPI accesses generic counters through
// libpfm4 / perf_event_open; this package reproduces the same programming
// model — open a counter for an (event, pid, cpu) triple, enable it, read
// deltas — on top of a software registry that the machine simulator feeds
// every tick.
//
// The generic events mirror the perf_event_open(2) hardware events the paper
// studied, among which it identified instructions, cache-references and
// cache-misses as the most power-correlated on multi-core systems.
package hpc

import (
	"fmt"
	"sort"
	"strings"
)

// Event identifies one generic hardware performance event.
type Event int

// Generic hardware events (the perf_event_open "hardware" event set).
const (
	// Instructions counts retired instructions.
	Instructions Event = iota + 1
	// CacheReferences counts last-level-cache accesses.
	CacheReferences
	// CacheMisses counts last-level-cache misses.
	CacheMisses
	// Cycles counts core clock cycles while not halted.
	Cycles
	// RefCycles counts reference (TSC-rate) cycles.
	RefCycles
	// BranchInstructions counts retired branch instructions.
	BranchInstructions
	// BranchMisses counts mispredicted branches.
	BranchMisses
	// BusCycles counts bus/uncore cycles.
	BusCycles
	// StalledCyclesFrontend counts cycles stalled waiting on instruction fetch.
	StalledCyclesFrontend
	// StalledCyclesBackend counts cycles stalled waiting on data / execution
	// resources (memory-bound behaviour).
	StalledCyclesBackend
)

// AllPIDs is the wildcard PID (mirrors perf's pid == -1 semantics).
const AllPIDs = -1

// AllCPUs is the wildcard CPU (mirrors perf's cpu == -1 semantics).
const AllCPUs = -1

var eventNames = map[Event]string{
	Instructions:          "instructions",
	CacheReferences:       "cache-references",
	CacheMisses:           "cache-misses",
	Cycles:                "cycles",
	RefCycles:             "ref-cycles",
	BranchInstructions:    "branch-instructions",
	BranchMisses:          "branch-misses",
	BusCycles:             "bus-cycles",
	StalledCyclesFrontend: "stalled-cycles-frontend",
	StalledCyclesBackend:  "stalled-cycles-backend",
}

// String returns the perf-style event name.
func (e Event) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Valid reports whether e names a known generic event.
func (e Event) Valid() bool {
	_, ok := eventNames[e]
	return ok
}

// ParseEvent converts a perf-style event name into an Event.
func ParseEvent(name string) (Event, error) {
	needle := strings.ToLower(strings.TrimSpace(name))
	for e, s := range eventNames {
		if s == needle {
			return e, nil
		}
	}
	return 0, fmt.Errorf("hpc: unknown event %q", name)
}

// GenericEvents returns every supported generic event in a stable order.
func GenericEvents() []Event {
	events := make([]Event, 0, len(eventNames))
	for e := range eventNames {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	return events
}

// PaperEvents returns the three counters the paper selected as the most
// correlated with power consumption on multi-core systems: instructions,
// cache-references and cache-misses.
func PaperEvents() []Event {
	return []Event{Instructions, CacheReferences, CacheMisses}
}

// MaxEvent is the highest-numbered generic event, which bounds the dense
// CountsVec representation.
const MaxEvent = StalledCyclesBackend

// CountsVec is a dense, fixed-size snapshot of event values indexed by Event.
// It is the allocation-free counterpart of Counts used on the per-round hot
// path: the whole event space fits in one small array, so vectors live on the
// stack or inside pooled batches instead of materialising a map per read.
// Index 0 is unused (events start at 1).
type CountsVec [MaxEvent + 1]uint64

// Get returns the value for e (0 when out of range).
func (v *CountsVec) Get(e Event) uint64 {
	if e < 1 || e > MaxEvent {
		return 0
	}
	return v[e]
}

// Set stores the value for e (ignored when out of range).
func (v *CountsVec) Set(e Event, value uint64) {
	if e < 1 || e > MaxEvent {
		return
	}
	v[e] = value
}

// Zero clears every slot.
func (v *CountsVec) Zero() { *v = CountsVec{} }

// AddVec accumulates other into v.
func (v *CountsVec) AddVec(other *CountsVec) {
	for i := range v {
		v[i] += other[i]
	}
}

// AddCounts accumulates a map-form snapshot into v.
func (v *CountsVec) AddCounts(c Counts) {
	for e, value := range c {
		if e >= 1 && e <= MaxEvent {
			v[e] += value
		}
	}
}

// Counts materialises the vector as a map, keeping only non-zero slots. This
// is for cold paths and API boundaries; hot paths should stay on the vector.
func (v *CountsVec) Counts() Counts {
	out := make(Counts)
	for i := 1; i <= int(MaxEvent); i++ {
		if v[i] != 0 {
			out[Event(i)] = v[i]
		}
	}
	return out
}

// Counts is a snapshot of event values.
type Counts map[Event]uint64

// Clone returns a deep copy of c.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for e, v := range c {
		out[e] = v
	}
	return out
}

// Add accumulates other into c.
func (c Counts) Add(other Counts) {
	for e, v := range other {
		c[e] += v
	}
}

// Delta returns c - previous, clamping any negative difference to zero (a
// counter can only move forward; a negative delta indicates a reset).
func (c Counts) Delta(previous Counts) Counts {
	out := make(Counts, len(c))
	for e, v := range c {
		p := previous[e]
		if v >= p {
			out[e] = v - p
		}
	}
	return out
}

// Get returns the value for e (0 when absent).
func (c Counts) Get(e Event) uint64 { return c[e] }

// Vector projects the counts onto the given event order as float64s, which is
// the representation fed to the regression pipeline.
func (c Counts) Vector(order []Event) []float64 {
	out := make([]float64, len(order))
	for i, e := range order {
		out[i] = float64(c[e])
	}
	return out
}

// String renders the counts in a stable, human-readable order.
func (c Counts) String() string {
	events := make([]Event, 0, len(c))
	for e := range c {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	parts := make([]string, 0, len(events))
	for _, e := range events {
		parts = append(parts, fmt.Sprintf("%s=%d", e, c[e]))
	}
	return strings.Join(parts, " ")
}
