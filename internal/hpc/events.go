// Package hpc simulates the Hardware Performance Counter (HPC) subsystem the
// paper relies on. The real PowerAPI accesses generic counters through
// libpfm4 / perf_event_open; this package reproduces the same programming
// model — open a counter for an (event, pid, cpu) triple, enable it, read
// deltas — on top of a software registry that the machine simulator feeds
// every tick.
//
// The generic events mirror the perf_event_open(2) hardware events the paper
// studied, among which it identified instructions, cache-references and
// cache-misses as the most power-correlated on multi-core systems.
package hpc

import (
	"fmt"
	"sort"
	"strings"
)

// Event identifies one generic hardware performance event.
type Event int

// Generic hardware events (the perf_event_open "hardware" event set).
const (
	// Instructions counts retired instructions.
	Instructions Event = iota + 1
	// CacheReferences counts last-level-cache accesses.
	CacheReferences
	// CacheMisses counts last-level-cache misses.
	CacheMisses
	// Cycles counts core clock cycles while not halted.
	Cycles
	// RefCycles counts reference (TSC-rate) cycles.
	RefCycles
	// BranchInstructions counts retired branch instructions.
	BranchInstructions
	// BranchMisses counts mispredicted branches.
	BranchMisses
	// BusCycles counts bus/uncore cycles.
	BusCycles
	// StalledCyclesFrontend counts cycles stalled waiting on instruction fetch.
	StalledCyclesFrontend
	// StalledCyclesBackend counts cycles stalled waiting on data / execution
	// resources (memory-bound behaviour).
	StalledCyclesBackend
)

// AllPIDs is the wildcard PID (mirrors perf's pid == -1 semantics).
const AllPIDs = -1

// AllCPUs is the wildcard CPU (mirrors perf's cpu == -1 semantics).
const AllCPUs = -1

var eventNames = map[Event]string{
	Instructions:          "instructions",
	CacheReferences:       "cache-references",
	CacheMisses:           "cache-misses",
	Cycles:                "cycles",
	RefCycles:             "ref-cycles",
	BranchInstructions:    "branch-instructions",
	BranchMisses:          "branch-misses",
	BusCycles:             "bus-cycles",
	StalledCyclesFrontend: "stalled-cycles-frontend",
	StalledCyclesBackend:  "stalled-cycles-backend",
}

// String returns the perf-style event name.
func (e Event) String() string {
	if s, ok := eventNames[e]; ok {
		return s
	}
	return fmt.Sprintf("Event(%d)", int(e))
}

// Valid reports whether e names a known generic event.
func (e Event) Valid() bool {
	_, ok := eventNames[e]
	return ok
}

// ParseEvent converts a perf-style event name into an Event.
func ParseEvent(name string) (Event, error) {
	needle := strings.ToLower(strings.TrimSpace(name))
	for e, s := range eventNames {
		if s == needle {
			return e, nil
		}
	}
	return 0, fmt.Errorf("hpc: unknown event %q", name)
}

// GenericEvents returns every supported generic event in a stable order.
func GenericEvents() []Event {
	events := make([]Event, 0, len(eventNames))
	for e := range eventNames {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	return events
}

// PaperEvents returns the three counters the paper selected as the most
// correlated with power consumption on multi-core systems: instructions,
// cache-references and cache-misses.
func PaperEvents() []Event {
	return []Event{Instructions, CacheReferences, CacheMisses}
}

// Counts is a snapshot of event values.
type Counts map[Event]uint64

// Clone returns a deep copy of c.
func (c Counts) Clone() Counts {
	out := make(Counts, len(c))
	for e, v := range c {
		out[e] = v
	}
	return out
}

// Add accumulates other into c.
func (c Counts) Add(other Counts) {
	for e, v := range other {
		c[e] += v
	}
}

// Delta returns c - previous, clamping any negative difference to zero (a
// counter can only move forward; a negative delta indicates a reset).
func (c Counts) Delta(previous Counts) Counts {
	out := make(Counts, len(c))
	for e, v := range c {
		p := previous[e]
		if v >= p {
			out[e] = v - p
		}
	}
	return out
}

// Get returns the value for e (0 when absent).
func (c Counts) Get(e Event) uint64 { return c[e] }

// Vector projects the counts onto the given event order as float64s, which is
// the representation fed to the regression pipeline.
func (c Counts) Vector(order []Event) []float64 {
	out := make([]float64, len(order))
	for i, e := range order {
		out[i] = float64(c[e])
	}
	return out
}

// String renders the counts in a stable, human-readable order.
func (c Counts) String() string {
	events := make([]Event, 0, len(c))
	for e := range c {
		events = append(events, e)
	}
	sort.Slice(events, func(i, j int) bool { return events[i] < events[j] })
	parts := make([]string, 0, len(events))
	for _, e := range events {
		parts = append(parts, fmt.Sprintf("%s=%d", e, c[e]))
	}
	return strings.Join(parts, " ")
}
