package hpc

import (
	"fmt"
	"sync"
)

// Registry is the kernel-side store of counter values. The machine simulator
// accumulates per-(pid, cpu) event deltas into it every tick; Counters opened
// by monitoring code read from it.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// perPIDCPU[pid][cpu] -> counts
	perPIDCPU map[int]map[int]Counts
	// perCPU[cpu] -> counts (all pids, including kernel/idle work)
	perCPU map[int]Counts
	system Counts
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{
		perPIDCPU: make(map[int]map[int]Counts),
		perCPU:    make(map[int]Counts),
		system:    make(Counts),
	}
}

// Accumulate adds deltas for work executed by pid on cpu. A pid of AllPIDs
// records CPU activity not attributable to any process (idle loops, kernel
// housekeeping); it still contributes to per-CPU and system totals.
func (r *Registry) Accumulate(pid, cpu int, deltas Counts) error {
	if cpu < 0 {
		return fmt.Errorf("hpc: accumulate on invalid cpu %d", cpu)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pid != AllPIDs {
		byCPU, ok := r.perPIDCPU[pid]
		if !ok {
			byCPU = make(map[int]Counts)
			r.perPIDCPU[pid] = byCPU
		}
		counts, ok := byCPU[cpu]
		if !ok {
			counts = make(Counts)
			byCPU[cpu] = counts
		}
		counts.Add(deltas)
	}
	cpuCounts, ok := r.perCPU[cpu]
	if !ok {
		cpuCounts = make(Counts)
		r.perCPU[cpu] = cpuCounts
	}
	cpuCounts.Add(deltas)
	r.system.Add(deltas)
	return nil
}

// ReadPID returns the cumulative counts of pid across every CPU.
func (r *Registry) ReadPID(pid int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(Counts)
	for _, counts := range r.perPIDCPU[pid] {
		out.Add(counts)
	}
	return out
}

// ReadPIDOnCPU returns the cumulative counts of pid on one CPU.
func (r *Registry) ReadPIDOnCPU(pid, cpu int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if byCPU, ok := r.perPIDCPU[pid]; ok {
		if counts, ok := byCPU[cpu]; ok {
			return counts.Clone()
		}
	}
	return make(Counts)
}

// ReadCPU returns the cumulative counts observed on one CPU (all PIDs).
func (r *Registry) ReadCPU(cpu int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if counts, ok := r.perCPU[cpu]; ok {
		return counts.Clone()
	}
	return make(Counts)
}

// ReadSystem returns machine-wide cumulative counts.
func (r *Registry) ReadSystem() Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.system.Clone()
}

// Read resolves a (pid, cpu) pair with perf wildcard semantics: AllPIDs
// and/or AllCPUs widen the scope of the query.
func (r *Registry) Read(pid, cpu int) Counts {
	switch {
	case pid == AllPIDs && cpu == AllCPUs:
		return r.ReadSystem()
	case pid == AllPIDs:
		return r.ReadCPU(cpu)
	case cpu == AllCPUs:
		return r.ReadPID(pid)
	default:
		return r.ReadPIDOnCPU(pid, cpu)
	}
}

// ReadEvent resolves one event of a (pid, cpu) pair with perf wildcard
// semantics, without materialising a Counts map. This is the monitoring hot
// path: the Sensor reads every counter of every monitored PID each tick, and
// building (then discarding) a full per-scope map per read dominated the
// pipeline's allocation profile.
func (r *Registry) ReadEvent(pid, cpu int, event Event) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	switch {
	case pid == AllPIDs && cpu == AllCPUs:
		return r.system.Get(event)
	case pid == AllPIDs:
		return r.perCPU[cpu].Get(event)
	case cpu == AllCPUs:
		var total uint64
		for _, counts := range r.perPIDCPU[pid] {
			total += counts.Get(event)
		}
		return total
	default:
		return r.perPIDCPU[pid][cpu].Get(event)
	}
}

// PIDs returns the PIDs that have recorded activity.
func (r *Registry) PIDs() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pids := make([]int, 0, len(r.perPIDCPU))
	for pid := range r.perPIDCPU {
		pids = append(pids, pid)
	}
	return pids
}

// Forget drops all data recorded for pid (used when a process exits).
func (r *Registry) Forget(pid int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.perPIDCPU, pid)
}
