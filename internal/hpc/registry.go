package hpc

import (
	"fmt"
	"sync"
)

// Registry is the kernel-side store of counter values. The machine simulator
// accumulates per-(pid, cpu) event deltas into it every tick; Counters opened
// by monitoring code read from it.
//
// Internally the registry stores dense CountsVec blocks instead of maps: the
// event space is tiny and fixed, so one small array per (pid, cpu) scope
// removes the per-tick map churn that dominated the allocation profile. A
// per-PID aggregate (across CPUs) is maintained alongside the per-(pid, cpu)
// detail so the AllCPUs wildcard — the Sensor's per-round read — resolves in
// one map lookup instead of a per-CPU scan.
//
// A Registry is safe for concurrent use.
type Registry struct {
	mu sync.RWMutex
	// perPIDCPU[pid][cpu] -> counts
	perPIDCPU map[int]map[int]*CountsVec
	// perPID[pid] -> counts summed across CPUs (the AllCPUs fast path)
	perPID map[int]*CountsVec
	// perCPU[cpu] -> counts (all pids, including kernel/idle work)
	perCPU []CountsVec
	system CountsVec
}

// NewRegistry returns an empty counter registry.
func NewRegistry() *Registry {
	return &Registry{
		perPIDCPU: make(map[int]map[int]*CountsVec),
		perPID:    make(map[int]*CountsVec),
	}
}

// Accumulate adds deltas for work executed by pid on cpu. A pid of AllPIDs
// records CPU activity not attributable to any process (idle loops, kernel
// housekeeping); it still contributes to per-CPU and system totals.
func (r *Registry) Accumulate(pid, cpu int, deltas Counts) error {
	var vec CountsVec
	vec.AddCounts(deltas)
	return r.AccumulateVec(pid, cpu, &vec)
}

// AccumulateVec is the allocation-free form of Accumulate: the machine
// simulator builds the delta block on its stack and hands it over by pointer;
// the registry copies the values into its own storage.
func (r *Registry) AccumulateVec(pid, cpu int, deltas *CountsVec) error {
	if cpu < 0 {
		return fmt.Errorf("hpc: accumulate on invalid cpu %d", cpu)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if pid != AllPIDs {
		byCPU, ok := r.perPIDCPU[pid]
		if !ok {
			byCPU = make(map[int]*CountsVec)
			r.perPIDCPU[pid] = byCPU
		}
		vec, ok := byCPU[cpu]
		if !ok {
			vec = new(CountsVec)
			byCPU[cpu] = vec
		}
		vec.AddVec(deltas)
		agg, ok := r.perPID[pid]
		if !ok {
			agg = new(CountsVec)
			r.perPID[pid] = agg
		}
		agg.AddVec(deltas)
	}
	for cpu >= len(r.perCPU) {
		r.perCPU = append(r.perCPU, CountsVec{})
	}
	r.perCPU[cpu].AddVec(deltas)
	r.system.AddVec(deltas)
	return nil
}

// ReadPID returns the cumulative counts of pid across every CPU.
func (r *Registry) ReadPID(pid int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if vec, ok := r.perPID[pid]; ok {
		return vec.Counts()
	}
	return make(Counts)
}

// ReadPIDOnCPU returns the cumulative counts of pid on one CPU.
func (r *Registry) ReadPIDOnCPU(pid, cpu int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if byCPU, ok := r.perPIDCPU[pid]; ok {
		if vec, ok := byCPU[cpu]; ok {
			return vec.Counts()
		}
	}
	return make(Counts)
}

// ReadCPU returns the cumulative counts observed on one CPU (all PIDs).
func (r *Registry) ReadCPU(cpu int) Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if cpu >= 0 && cpu < len(r.perCPU) {
		return r.perCPU[cpu].Counts()
	}
	return make(Counts)
}

// ReadSystem returns machine-wide cumulative counts.
func (r *Registry) ReadSystem() Counts {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.system.Counts()
}

// Read resolves a (pid, cpu) pair with perf wildcard semantics: AllPIDs
// and/or AllCPUs widen the scope of the query.
func (r *Registry) Read(pid, cpu int) Counts {
	switch {
	case pid == AllPIDs && cpu == AllCPUs:
		return r.ReadSystem()
	case pid == AllPIDs:
		return r.ReadCPU(cpu)
	case cpu == AllCPUs:
		return r.ReadPID(pid)
	default:
		return r.ReadPIDOnCPU(pid, cpu)
	}
}

// ReadEvent resolves one event of a (pid, cpu) pair with perf wildcard
// semantics, without materialising a Counts map. This is the monitoring hot
// path: the Sensor reads every counter of every monitored PID each tick, and
// the (pid, AllCPUs) case resolves through the per-PID aggregate in one map
// lookup plus one array index.
func (r *Registry) ReadEvent(pid, cpu int, event Event) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	switch {
	case pid == AllPIDs && cpu == AllCPUs:
		return r.system.Get(event)
	case pid == AllPIDs:
		if cpu >= 0 && cpu < len(r.perCPU) {
			return r.perCPU[cpu].Get(event)
		}
		return 0
	case cpu == AllCPUs:
		if vec, ok := r.perPID[pid]; ok {
			return vec.Get(event)
		}
		return 0
	default:
		if byCPU, ok := r.perPIDCPU[pid]; ok {
			if vec, ok := byCPU[cpu]; ok {
				return vec.Get(event)
			}
		}
		return 0
	}
}

// PIDs returns the PIDs that have recorded activity.
func (r *Registry) PIDs() []int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	pids := make([]int, 0, len(r.perPIDCPU))
	for pid := range r.perPIDCPU {
		pids = append(pids, pid)
	}
	return pids
}

// Forget drops all data recorded for pid (used when a process exits).
func (r *Registry) Forget(pid int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.perPIDCPU, pid)
	delete(r.perPID, pid)
}
