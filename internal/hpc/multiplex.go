package hpc

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Real processors expose only a handful of programmable counter slots per
// logical CPU (4 on the paper's Sandy Bridge testbed when HyperThreading is
// enabled). When monitoring code asks for more events than there are slots,
// the kernel time-multiplexes the events and scales the reported values by
// timeEnabled/timeRunning. The paper's choice of exactly three generic
// counters is partly motivated by this constraint — using the full generic
// set forces multiplexing and adds estimation noise.
//
// MultiplexedCounterSet reproduces this behaviour so the ablation experiments
// can quantify the cost of monitoring "too many" events.

// DefaultHardwareSlots is the number of simultaneously programmable counters
// per logical CPU on the simulated processors.
const DefaultHardwareSlots = 4

// MultiplexedCounterSet behaves like a CounterSet but only keeps a limited
// number of events scheduled on real slots at any time, rotating the active
// group on every Rotate call and scaling reads accordingly.
type MultiplexedCounterSet struct {
	mu        sync.Mutex
	registry  *Registry
	pid, cpu  int
	events    []Event
	slots     int
	active    int // index of the first event of the active group
	enabled   bool
	closed    bool
	baselines map[Event]uint64
	// accumulated raw counts and scheduled time per event
	raw       map[Event]uint64
	scheduled map[Event]time.Duration
	total     time.Duration
}

// OpenMultiplexedCounterSet opens a counter set that only has `slots`
// hardware counters available. A non-positive slots falls back to
// DefaultHardwareSlots.
func OpenMultiplexedCounterSet(registry *Registry, events []Event, pid, cpu, slots int) (*MultiplexedCounterSet, error) {
	if registry == nil {
		return nil, errors.New("hpc: nil registry")
	}
	if len(events) == 0 {
		return nil, errors.New("hpc: multiplexed counter set needs at least one event")
	}
	seen := make(map[Event]bool, len(events))
	for _, e := range events {
		if !e.Valid() {
			return nil, fmt.Errorf("hpc: cannot open invalid event %v", e)
		}
		if seen[e] {
			return nil, fmt.Errorf("hpc: duplicate event %v in multiplexed counter set", e)
		}
		seen[e] = true
	}
	if slots <= 0 {
		slots = DefaultHardwareSlots
	}
	return &MultiplexedCounterSet{
		registry:  registry,
		pid:       pid,
		cpu:       cpu,
		events:    append([]Event(nil), events...),
		slots:     slots,
		baselines: make(map[Event]uint64, len(events)),
		raw:       make(map[Event]uint64, len(events)),
		scheduled: make(map[Event]time.Duration, len(events)),
	}, nil
}

// Events returns the monitored events in their opening order.
func (s *MultiplexedCounterSet) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}

// Multiplexed reports whether the set has more events than hardware slots.
func (s *MultiplexedCounterSet) Multiplexed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events) > s.slots
}

// activeGroup returns the events currently scheduled on hardware slots.
func (s *MultiplexedCounterSet) activeGroup() []Event {
	if len(s.events) <= s.slots {
		return s.events
	}
	group := make([]Event, 0, s.slots)
	for i := 0; i < s.slots; i++ {
		group = append(group, s.events[(s.active+i)%len(s.events)])
	}
	return group
}

// Enable starts counting with the first event group scheduled.
func (s *MultiplexedCounterSet) Enable() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.enabled {
		return nil
	}
	s.enabled = true
	s.snapshotActiveLocked()
	return nil
}

func (s *MultiplexedCounterSet) snapshotActiveLocked() {
	counts := s.registry.Read(s.pid, s.cpu)
	for _, e := range s.activeGroup() {
		s.baselines[e] = counts.Get(e)
	}
}

// harvestActiveLocked folds the delta since the last snapshot into raw counts
// and records the scheduling time.
func (s *MultiplexedCounterSet) harvestActiveLocked(window time.Duration) {
	counts := s.registry.Read(s.pid, s.cpu)
	for _, e := range s.activeGroup() {
		current := counts.Get(e)
		if base, ok := s.baselines[e]; ok && current > base {
			s.raw[e] += current - base
		}
		s.scheduled[e] += window
	}
	s.total += window
}

// Rotate accounts `window` of monitoring time to the currently scheduled
// group and rotates to the next group, mirroring the kernel's hrtimer-driven
// rotation. Callers invoke it once per sampling interval.
func (s *MultiplexedCounterSet) Rotate(window time.Duration) error {
	if window <= 0 {
		return errors.New("hpc: rotation window must be positive")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.enabled {
		return errors.New("hpc: cannot rotate a disabled counter set")
	}
	s.harvestActiveLocked(window)
	if len(s.events) > s.slots {
		s.active = (s.active + s.slots) % len(s.events)
	}
	s.snapshotActiveLocked()
	return nil
}

// ReadScaled returns the multiplexing-scaled counts accumulated so far:
// raw * (totalTime / scheduledTime) per event, which is exactly how
// perf_event_open consumers extrapolate multiplexed counters. It also resets
// the accumulation, so successive calls return per-interval deltas.
func (s *MultiplexedCounterSet) ReadScaled() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := make(Counts, len(s.events))
	for _, e := range s.events {
		sched := s.scheduled[e]
		raw := s.raw[e]
		switch {
		case sched <= 0:
			out[e] = 0
		case s.total <= sched:
			out[e] = raw
		default:
			scale := float64(s.total) / float64(sched)
			out[e] = uint64(float64(raw) * scale)
		}
		s.raw[e] = 0
		s.scheduled[e] = 0
	}
	s.total = 0
	return out, nil
}

// Close releases the set.
func (s *MultiplexedCounterSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
