package hpc

import (
	"testing"
	"testing/quick"
)

func TestEventString(t *testing.T) {
	tests := []struct {
		event Event
		want  string
	}{
		{Instructions, "instructions"},
		{CacheReferences, "cache-references"},
		{CacheMisses, "cache-misses"},
		{Cycles, "cycles"},
		{StalledCyclesBackend, "stalled-cycles-backend"},
	}
	for _, tt := range tests {
		if got := tt.event.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.event, got, tt.want)
		}
	}
	if Event(999).String() != "Event(999)" {
		t.Errorf("unknown event should render as Event(N)")
	}
}

func TestEventValid(t *testing.T) {
	for _, e := range GenericEvents() {
		if !e.Valid() {
			t.Errorf("%v should be valid", e)
		}
	}
	if Event(0).Valid() || Event(999).Valid() {
		t.Error("invalid events reported as valid")
	}
}

func TestParseEvent(t *testing.T) {
	tests := []struct {
		in      string
		want    Event
		wantErr bool
	}{
		{in: "instructions", want: Instructions},
		{in: "  Cache-Misses ", want: CacheMisses},
		{in: "CACHE-REFERENCES", want: CacheReferences},
		{in: "bogus", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseEvent(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseEvent(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseEvent(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseEventRoundTrip(t *testing.T) {
	for _, e := range GenericEvents() {
		got, err := ParseEvent(e.String())
		if err != nil {
			t.Fatalf("ParseEvent(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
}

func TestGenericEventsStableAndComplete(t *testing.T) {
	a := GenericEvents()
	b := GenericEvents()
	if len(a) != 10 {
		t.Fatalf("expected 10 generic events, got %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("GenericEvents order is not stable")
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i-1] >= a[i] {
			t.Fatal("GenericEvents is not sorted")
		}
	}
}

func TestPaperEvents(t *testing.T) {
	events := PaperEvents()
	want := []Event{Instructions, CacheReferences, CacheMisses}
	if len(events) != len(want) {
		t.Fatalf("PaperEvents() = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("PaperEvents()[%d] = %v, want %v", i, events[i], want[i])
		}
	}
}

func TestCountsCloneAddDelta(t *testing.T) {
	c := Counts{Instructions: 100, CacheMisses: 5}
	clone := c.Clone()
	clone[Instructions] = 1
	if c[Instructions] != 100 {
		t.Fatal("Clone must not alias the original map")
	}

	c.Add(Counts{Instructions: 50, Cycles: 10})
	if c[Instructions] != 150 || c[Cycles] != 10 || c[CacheMisses] != 5 {
		t.Fatalf("Add result unexpected: %v", c)
	}

	prev := Counts{Instructions: 100}
	delta := c.Delta(prev)
	if delta[Instructions] != 50 || delta[Cycles] != 10 {
		t.Fatalf("Delta result unexpected: %v", delta)
	}
	// A counter that went backwards clamps to zero.
	back := Counts{Instructions: 10}.Delta(Counts{Instructions: 100})
	if back[Instructions] != 0 {
		t.Fatalf("backwards delta = %d, want 0", back[Instructions])
	}
}

func TestCountsVector(t *testing.T) {
	c := Counts{Instructions: 3, CacheReferences: 2, CacheMisses: 1}
	v := c.Vector(PaperEvents())
	if len(v) != 3 || v[0] != 3 || v[1] != 2 || v[2] != 1 {
		t.Fatalf("Vector = %v", v)
	}
	// Absent events project to zero.
	v2 := Counts{}.Vector(PaperEvents())
	for _, x := range v2 {
		if x != 0 {
			t.Fatalf("Vector of empty counts = %v", v2)
		}
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{CacheMisses: 1, Instructions: 2}
	s := c.String()
	if s != "instructions=2 cache-misses=1" {
		t.Fatalf("String() = %q", s)
	}
	if (Counts{}).String() != "" {
		t.Fatalf("empty Counts String() = %q", (Counts{}).String())
	}
}

func TestCountsAddCommutativeProperty(t *testing.T) {
	f := func(a, b uint32) bool {
		x := Counts{Instructions: uint64(a)}
		y := Counts{Instructions: uint64(b)}
		x1 := x.Clone()
		x1.Add(y)
		y1 := y.Clone()
		y1.Add(x)
		return x1[Instructions] == y1[Instructions]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
