package hpc

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned when reading a counter that has been closed.
var ErrClosed = errors.New("hpc: counter is closed")

// Counter is a user-space handle over one (event, pid, cpu) triple, mirroring
// the perf_event_open file-descriptor model: the value reported is the number
// of events observed since the counter was opened (or last reset), while the
// counter is enabled.
type Counter struct {
	registry *Registry
	event    Event
	pid      int
	cpu      int

	mu       sync.Mutex
	enabled  bool
	closed   bool
	baseline uint64 // registry value at open/reset/enable boundary
	value    uint64 // accumulated while enabled
}

// OpenCounter opens a counter for event on the (pid, cpu) scope. Wildcards
// AllPIDs / AllCPUs follow perf semantics. The counter starts disabled, as
// perf_event_open does with the disabled attribute set.
func OpenCounter(registry *Registry, event Event, pid, cpu int) (*Counter, error) {
	if registry == nil {
		return nil, errors.New("hpc: nil registry")
	}
	if !event.Valid() {
		return nil, fmt.Errorf("hpc: cannot open invalid event %v", event)
	}
	return &Counter{registry: registry, event: event, pid: pid, cpu: cpu}, nil
}

// Event returns the event the counter observes.
func (c *Counter) Event() Event { return c.event }

// PID returns the pid scope of the counter.
func (c *Counter) PID() int { return c.pid }

// CPU returns the cpu scope of the counter.
func (c *Counter) CPU() int { return c.cpu }

func (c *Counter) registryValue() uint64 {
	return c.registry.ReadEvent(c.pid, c.cpu, c.event)
}

// Enable starts counting from the current registry value.
func (c *Counter) Enable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if c.enabled {
		return nil
	}
	c.baseline = c.registryValue()
	c.enabled = true
	return nil
}

// Disable stops counting, folding the observed delta into the stored value.
func (c *Counter) Disable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	if !c.enabled {
		return nil
	}
	current := c.registryValue()
	if current > c.baseline {
		c.value += current - c.baseline
	}
	c.enabled = false
	return nil
}

// Read returns the number of events observed while enabled since open/reset.
func (c *Counter) Read() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	value := c.value
	if c.enabled {
		current := c.registryValue()
		if current > c.baseline {
			value += current - c.baseline
		}
	}
	return value, nil
}

// TakeDelta reads the events observed since the last take (or open/reset) and
// zeroes the counter, with a single registry lookup — the equivalent of
// Read followed by Reset, at half the cost.
func (c *Counter) TakeDelta() (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	value := c.value
	current := c.registryValue()
	if c.enabled && current > c.baseline {
		value += current - c.baseline
	}
	c.value = 0
	c.baseline = current
	return value, nil
}

// Reset zeroes the counter, keeping its enabled state.
func (c *Counter) Reset() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.value = 0
	c.baseline = c.registryValue()
	return nil
}

// Close releases the counter. Further operations return ErrClosed.
func (c *Counter) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// CounterSet groups counters for several events over the same (pid, cpu)
// scope, which is how the PowerAPI Sensor monitors one process.
type CounterSet struct {
	mu       sync.Mutex
	counters map[Event]*Counter
	order    []Event
}

// OpenCounterSet opens one counter per event for the given scope. All
// counters start disabled.
func OpenCounterSet(registry *Registry, events []Event, pid, cpu int) (*CounterSet, error) {
	if len(events) == 0 {
		return nil, errors.New("hpc: counter set needs at least one event")
	}
	set := &CounterSet{counters: make(map[Event]*Counter, len(events))}
	for _, e := range events {
		if _, dup := set.counters[e]; dup {
			return nil, fmt.Errorf("hpc: duplicate event %v in counter set", e)
		}
		c, err := OpenCounter(registry, e, pid, cpu)
		if err != nil {
			return nil, fmt.Errorf("hpc: open %v: %w", e, err)
		}
		set.counters[e] = c
		set.order = append(set.order, e)
	}
	return set, nil
}

// Events returns the events of the set in their opening order.
func (s *CounterSet) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.order...)
}

// Enable enables every counter of the set.
func (s *CounterSet) Enable() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if err := c.Enable(); err != nil {
			return err
		}
	}
	return nil
}

// Disable disables every counter of the set.
func (s *CounterSet) Disable() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if err := c.Disable(); err != nil {
			return err
		}
	}
	return nil
}

// Read returns the current value of every counter.
func (s *CounterSet) Read() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Counts, len(s.counters))
	for e, c := range s.counters {
		v, err := c.Read()
		if err != nil {
			return nil, fmt.Errorf("hpc: read %v: %w", e, err)
		}
		out[e] = v
	}
	return out, nil
}

// ReadDelta returns the counts accumulated since the previous ReadDelta (or
// since enable for the first call) by resetting each counter after reading.
func (s *CounterSet) ReadDelta() (Counts, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(Counts, len(s.counters))
	for e, c := range s.counters {
		v, err := c.TakeDelta()
		if err != nil {
			return nil, fmt.Errorf("hpc: read %v: %w", e, err)
		}
		out[e] = v
	}
	return out, nil
}

// ReadDeltaVec is the allocation-free form of ReadDelta: it zeroes dst and
// fills one slot per counter with the delta accumulated since the previous
// read. This is the Sensor's per-round read — a fresh Counts map per target
// per round previously accounted for a fifth of the pipeline's allocations.
func (s *CounterSet) ReadDeltaVec(dst *CountsVec) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst.Zero()
	for e, c := range s.counters {
		v, err := c.TakeDelta()
		if err != nil {
			return fmt.Errorf("hpc: read %v: %w", e, err)
		}
		dst[e] = v
	}
	return nil
}

// Close closes every counter of the set.
func (s *CounterSet) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.counters {
		if err := c.Close(); err != nil {
			return err
		}
	}
	return nil
}
