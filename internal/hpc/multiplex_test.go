package hpc

import (
	"errors"
	"testing"
	"time"
)

func TestOpenMultiplexedValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := OpenMultiplexedCounterSet(nil, PaperEvents(), 1, AllCPUs, 4); err == nil {
		t.Fatal("nil registry should fail")
	}
	if _, err := OpenMultiplexedCounterSet(r, nil, 1, AllCPUs, 4); err == nil {
		t.Fatal("empty events should fail")
	}
	if _, err := OpenMultiplexedCounterSet(r, []Event{Event(99)}, 1, AllCPUs, 4); err == nil {
		t.Fatal("invalid event should fail")
	}
	if _, err := OpenMultiplexedCounterSet(r, []Event{Instructions, Instructions}, 1, AllCPUs, 4); err == nil {
		t.Fatal("duplicate events should fail")
	}
	set, err := OpenMultiplexedCounterSet(r, PaperEvents(), 1, AllCPUs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if set.Multiplexed() {
		t.Fatal("3 events on 4 default slots should not be multiplexed")
	}
	if len(set.Events()) != 3 {
		t.Fatalf("Events() = %v", set.Events())
	}
}

func TestMultiplexedExactWhenEnoughSlots(t *testing.T) {
	r := NewRegistry()
	set, err := OpenMultiplexedCounterSet(r, PaperEvents(), 7, AllCPUs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Enable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(7, 0, Counts{Instructions: 1000, CacheReferences: 100, CacheMisses: 10})
	if err := set.Rotate(time.Second); err != nil {
		t.Fatal(err)
	}
	counts, err := set.ReadScaled()
	if err != nil {
		t.Fatal(err)
	}
	if counts[Instructions] != 1000 || counts[CacheReferences] != 100 || counts[CacheMisses] != 10 {
		t.Fatalf("unscaled read should be exact, got %v", counts)
	}
}

func TestMultiplexedScalingApproximatesSteadyRate(t *testing.T) {
	r := NewRegistry()
	events := GenericEvents() // 10 events on 4 slots -> multiplexed
	set, err := OpenMultiplexedCounterSet(r, events, 7, AllCPUs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !set.Multiplexed() {
		t.Fatal("10 events on 4 slots must be multiplexed")
	}
	if err := set.Enable(); err != nil {
		t.Fatal(err)
	}
	// A steady workload: 1000 instructions per 100ms rotation window.
	const rotations = 50
	for i := 0; i < rotations; i++ {
		_ = r.Accumulate(7, 0, Counts{Instructions: 1000, Cycles: 2000})
		if err := set.Rotate(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	counts, err := set.ReadScaled()
	if err != nil {
		t.Fatal(err)
	}
	// True total is 50_000 instructions; the scaled estimate must be within
	// 25% despite each event being scheduled only ~40% of the time.
	got := float64(counts[Instructions])
	if got < 37500 || got > 62500 {
		t.Fatalf("scaled instructions = %v, want within 25%% of 50000", got)
	}
	if counts[Cycles] == 0 {
		t.Fatal("cycles should have been observed in some rotation groups")
	}
}

func TestMultiplexedReadResetsAccumulation(t *testing.T) {
	r := NewRegistry()
	set, _ := OpenMultiplexedCounterSet(r, PaperEvents(), 7, AllCPUs, 4)
	_ = set.Enable()
	_ = r.Accumulate(7, 0, Counts{Instructions: 500})
	_ = set.Rotate(time.Second)
	first, err := set.ReadScaled()
	if err != nil {
		t.Fatal(err)
	}
	if first[Instructions] != 500 {
		t.Fatalf("first read = %v", first[Instructions])
	}
	second, err := set.ReadScaled()
	if err != nil {
		t.Fatal(err)
	}
	if second[Instructions] != 0 {
		t.Fatalf("second read should be zero, got %v", second[Instructions])
	}
}

func TestMultiplexedLifecycleErrors(t *testing.T) {
	r := NewRegistry()
	set, _ := OpenMultiplexedCounterSet(r, PaperEvents(), 7, AllCPUs, 2)
	if err := set.Rotate(time.Second); err == nil {
		t.Fatal("rotate before enable should fail")
	}
	_ = set.Enable()
	if err := set.Enable(); err != nil {
		t.Fatal("double enable should be a no-op")
	}
	if err := set.Rotate(0); err == nil {
		t.Fatal("zero window should fail")
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	if err := set.Enable(); !errors.Is(err, ErrClosed) {
		t.Fatalf("enable after close: %v", err)
	}
	if err := set.Rotate(time.Second); !errors.Is(err, ErrClosed) {
		t.Fatalf("rotate after close: %v", err)
	}
	if _, err := set.ReadScaled(); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
}

func TestMultiplexedRotationCoversAllEvents(t *testing.T) {
	r := NewRegistry()
	events := GenericEvents()
	set, _ := OpenMultiplexedCounterSet(r, events, 7, AllCPUs, 3)
	_ = set.Enable()
	// After enough rotations with steady traffic, every event must have been
	// scheduled at least once (non-zero scaled value for events that occur).
	for i := 0; i < 20; i++ {
		_ = r.Accumulate(7, 0, Counts{
			Instructions: 100, Cycles: 200, CacheReferences: 50, CacheMisses: 10,
			BranchInstructions: 20, BranchMisses: 2, BusCycles: 5,
			RefCycles: 200, StalledCyclesFrontend: 8, StalledCyclesBackend: 30,
		})
		_ = set.Rotate(50 * time.Millisecond)
	}
	counts, err := set.ReadScaled()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if counts[e] == 0 {
			t.Fatalf("event %v never scheduled across rotations: %v", e, counts)
		}
	}
}
