package hpc

import (
	"errors"
	"testing"
)

func TestOpenCounterValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := OpenCounter(nil, Instructions, 1, 0); err == nil {
		t.Fatal("nil registry should fail")
	}
	if _, err := OpenCounter(r, Event(999), 1, 0); err == nil {
		t.Fatal("invalid event should fail")
	}
	c, err := OpenCounter(r, Instructions, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Event() != Instructions || c.PID() != 1 || c.CPU() != 0 {
		t.Fatal("counter metadata mismatch")
	}
}

func TestCounterStartsDisabled(t *testing.T) {
	r := NewRegistry()
	c, err := OpenCounter(r, Instructions, 1, AllCPUs)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(1, 0, Counts{Instructions: 100})
	v, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("disabled counter observed %d events, want 0", v)
	}
}

func TestCounterEnableReadDisable(t *testing.T) {
	r := NewRegistry()
	c, _ := OpenCounter(r, Instructions, 1, AllCPUs)

	_ = r.Accumulate(1, 0, Counts{Instructions: 50}) // before enable: invisible
	if err := c.Enable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(1, 0, Counts{Instructions: 30})
	v, err := c.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != 30 {
		t.Fatalf("Read = %d, want 30", v)
	}

	if err := c.Disable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(1, 0, Counts{Instructions: 1000}) // while disabled: invisible
	v, _ = c.Read()
	if v != 30 {
		t.Fatalf("Read after disable = %d, want 30", v)
	}

	// Re-enable continues accumulating on top of the saved value.
	_ = c.Enable()
	_ = r.Accumulate(1, 0, Counts{Instructions: 5})
	v, _ = c.Read()
	if v != 35 {
		t.Fatalf("Read after re-enable = %d, want 35", v)
	}
}

func TestCounterDoubleEnableIsIdempotent(t *testing.T) {
	r := NewRegistry()
	c, _ := OpenCounter(r, Instructions, 1, AllCPUs)
	_ = c.Enable()
	_ = r.Accumulate(1, 0, Counts{Instructions: 10})
	if err := c.Enable(); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Read()
	if v != 10 {
		t.Fatalf("double enable lost events: %d, want 10", v)
	}
	if err := c.Disable(); err != nil {
		t.Fatal(err)
	}
	if err := c.Disable(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterReset(t *testing.T) {
	r := NewRegistry()
	c, _ := OpenCounter(r, CacheMisses, 7, AllCPUs)
	_ = c.Enable()
	_ = r.Accumulate(7, 0, Counts{CacheMisses: 42})
	if err := c.Reset(); err != nil {
		t.Fatal(err)
	}
	v, _ := c.Read()
	if v != 0 {
		t.Fatalf("Read after reset = %d, want 0", v)
	}
	_ = r.Accumulate(7, 0, Counts{CacheMisses: 8})
	v, _ = c.Read()
	if v != 8 {
		t.Fatalf("Read after reset+accumulate = %d, want 8", v)
	}
}

func TestCounterTakeDelta(t *testing.T) {
	r := NewRegistry()
	c, err := OpenCounter(r, Instructions, 1, AllCPUs)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Enable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(1, 0, Counts{Instructions: 40})
	got, err := c.TakeDelta()
	if err != nil {
		t.Fatal(err)
	}
	if got != 40 {
		t.Fatalf("first TakeDelta = %d, want 40", got)
	}
	// The take reset the counter: only new activity shows up next time.
	_ = r.Accumulate(1, 0, Counts{Instructions: 2})
	if got, _ := c.TakeDelta(); got != 2 {
		t.Fatalf("second TakeDelta = %d, want 2", got)
	}
	if got, _ := c.TakeDelta(); got != 0 {
		t.Fatalf("idle TakeDelta = %d, want 0", got)
	}
	// Disabled counters take their stored value and keep the baseline
	// current, exactly like Read followed by Reset.
	if err := c.Disable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(1, 0, Counts{Instructions: 9})
	if got, _ := c.TakeDelta(); got != 0 {
		t.Fatalf("disabled TakeDelta = %d, want 0", got)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.TakeDelta(); err == nil {
		t.Fatal("TakeDelta on a closed counter should fail")
	}
}

func TestCounterClosed(t *testing.T) {
	r := NewRegistry()
	c, _ := OpenCounter(r, Cycles, 1, 0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Read on closed counter: %v, want ErrClosed", err)
	}
	if err := c.Enable(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Enable on closed counter: %v, want ErrClosed", err)
	}
	if err := c.Disable(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Disable on closed counter: %v, want ErrClosed", err)
	}
	if err := c.Reset(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Reset on closed counter: %v, want ErrClosed", err)
	}
}

func TestCounterSetLifecycle(t *testing.T) {
	r := NewRegistry()
	set, err := OpenCounterSet(r, PaperEvents(), 3, AllCPUs)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := set.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	if got := set.Events(); len(got) != 3 || got[0] != Instructions {
		t.Fatalf("Events() = %v", got)
	}
	if err := set.Enable(); err != nil {
		t.Fatal(err)
	}
	_ = r.Accumulate(3, 0, Counts{Instructions: 100, CacheReferences: 10, CacheMisses: 2})
	counts, err := set.Read()
	if err != nil {
		t.Fatal(err)
	}
	if counts[Instructions] != 100 || counts[CacheReferences] != 10 || counts[CacheMisses] != 2 {
		t.Fatalf("Read = %v", counts)
	}
	if err := set.Disable(); err != nil {
		t.Fatal(err)
	}
}

func TestCounterSetReadDelta(t *testing.T) {
	r := NewRegistry()
	set, err := OpenCounterSet(r, []Event{Instructions}, 4, AllCPUs)
	if err != nil {
		t.Fatal(err)
	}
	_ = set.Enable()

	_ = r.Accumulate(4, 0, Counts{Instructions: 10})
	d1, err := set.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d1[Instructions] != 10 {
		t.Fatalf("first delta = %d, want 10", d1[Instructions])
	}

	_ = r.Accumulate(4, 0, Counts{Instructions: 7})
	d2, err := set.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d2[Instructions] != 7 {
		t.Fatalf("second delta = %d, want 7", d2[Instructions])
	}

	d3, err := set.ReadDelta()
	if err != nil {
		t.Fatal(err)
	}
	if d3[Instructions] != 0 {
		t.Fatalf("idle delta = %d, want 0", d3[Instructions])
	}
}

func TestCounterSetValidation(t *testing.T) {
	r := NewRegistry()
	if _, err := OpenCounterSet(r, nil, 1, 0); err == nil {
		t.Fatal("empty event list should fail")
	}
	if _, err := OpenCounterSet(r, []Event{Instructions, Instructions}, 1, 0); err == nil {
		t.Fatal("duplicate events should fail")
	}
	if _, err := OpenCounterSet(r, []Event{Event(999)}, 1, 0); err == nil {
		t.Fatal("invalid event should fail")
	}
}

func TestCounterSetClosedRead(t *testing.T) {
	r := NewRegistry()
	set, _ := OpenCounterSet(r, []Event{Instructions}, 1, 0)
	_ = set.Close()
	if _, err := set.Read(); err == nil {
		t.Fatal("Read on closed set should fail")
	}
	if _, err := set.ReadDelta(); err == nil {
		t.Fatal("ReadDelta on closed set should fail")
	}
}

func TestCounterPerCPUScope(t *testing.T) {
	r := NewRegistry()
	c0, _ := OpenCounter(r, Instructions, AllPIDs, 0)
	c1, _ := OpenCounter(r, Instructions, AllPIDs, 1)
	_ = c0.Enable()
	_ = c1.Enable()
	_ = r.Accumulate(1, 0, Counts{Instructions: 11})
	_ = r.Accumulate(2, 1, Counts{Instructions: 22})
	v0, _ := c0.Read()
	v1, _ := c1.Read()
	if v0 != 11 || v1 != 22 {
		t.Fatalf("per-cpu scoped reads = %d, %d; want 11, 22", v0, v1)
	}
}
