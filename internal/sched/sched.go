// Package sched provides the OS scheduler substrate: every simulation tick it
// decides which logical CPU each runnable process executes on. The paper's
// motivation section argues that power estimations should feed scheduling
// decisions ("identify the largest power consumers and make informed
// decisions during the scheduling"); the package therefore ships both
// conventional load-balancing policies and an energy-aware consolidating
// policy used by the scheduler example.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"powerapi/internal/cpu"
)

// Candidate is one runnable process from the scheduler's point of view.
type Candidate struct {
	// PID identifies the process.
	PID int
	// Utilization is the fraction of one logical CPU the process wants this
	// tick, in [0, 1].
	Utilization float64
	// Affinity restricts the logical CPUs the process may run on (nil = any).
	Affinity []int
}

// Assignment places one process on one logical CPU for the tick.
type Assignment struct {
	// PID identifies the process.
	PID int
	// LogicalCPU is the hardware thread the process runs on.
	LogicalCPU int
	// Share is the fraction of the logical CPU granted, in [0, 1]. It may be
	// lower than the candidate's demand when the CPU is oversubscribed.
	Share float64
}

// Scheduler assigns runnable processes to logical CPUs.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Assign maps every candidate to at most one logical CPU for this tick.
	Assign(candidates []Candidate, topo *cpu.Topology) ([]Assignment, error)
}

// validateCandidates rejects malformed demands early.
func validateCandidates(candidates []Candidate, topo *cpu.Topology) error {
	if topo == nil {
		return errors.New("sched: nil topology")
	}
	for _, c := range candidates {
		if c.Utilization < 0 || c.Utilization > 1 {
			return fmt.Errorf("sched: candidate %d utilization %v out of [0,1]", c.PID, c.Utilization)
		}
		for _, id := range c.Affinity {
			if id < 0 || id >= topo.NumLogical() {
				return fmt.Errorf("sched: candidate %d affinity references unknown cpu %d", c.PID, id)
			}
		}
	}
	return nil
}

// allowedCPUs resolves the affinity of a candidate to a usable CPU list.
func allowedCPUs(c Candidate, topo *cpu.Topology) []int {
	if len(c.Affinity) == 0 {
		all := make([]int, topo.NumLogical())
		for i := range all {
			all[i] = i
		}
		return all
	}
	return c.Affinity
}

// rebalanceShares scales the shares on oversubscribed CPUs so that the total
// share per logical CPU never exceeds 1. totals is a caller-provided scratch
// slice of at least NumLogical entries; it is zeroed and refilled here.
func rebalanceShares(assignments []Assignment, totals []float64) {
	for i := range totals {
		totals[i] = 0
	}
	for _, a := range assignments {
		totals[a.LogicalCPU] += a.Share
	}
	for i, a := range assignments {
		if total := totals[a.LogicalCPU]; total > 1 {
			assignments[i].Share = a.Share / total
		}
	}
}

// LoadBalancer is a CFS-like policy: it places each process on the least
// loaded permissible logical CPU, preferring to keep physical cores' second
// hyperthreads free until every core has work (the way the Linux scheduler's
// SMT-aware load balancing behaves).
//
// A LoadBalancer keeps per-instance scratch buffers so that steady-state
// Assign calls allocate nothing: it is NOT safe for concurrent use, and the
// returned slice is only valid until the next Assign call — exactly the
// contract the machine simulator's single-threaded tick loop needs.
type LoadBalancer struct {
	ordered  []Candidate
	out      []Assignment
	load     []float64 // per logical cpu
	coreLoad []float64 // per physical core
	totals   []float64 // rebalance scratch, per logical cpu
}

var _ Scheduler = (*LoadBalancer)(nil)

// NewLoadBalancer creates the default scheduling policy.
func NewLoadBalancer() *LoadBalancer { return &LoadBalancer{} }

// Name implements Scheduler.
func (l *LoadBalancer) Name() string { return "load-balance" }

// Assign implements Scheduler.
func (l *LoadBalancer) Assign(candidates []Candidate, topo *cpu.Topology) ([]Assignment, error) {
	if err := validateCandidates(candidates, topo); err != nil {
		return nil, err
	}
	numLogical := topo.NumLogical()
	coreOf := topo.CoreMap()
	if len(l.load) < numLogical {
		l.load = make([]float64, numLogical)
		l.totals = make([]float64, numLogical)
		l.coreLoad = make([]float64, topo.NumCores())
	}
	load := l.load[:numLogical]
	coreLoad := l.coreLoad[:topo.NumCores()]
	for i := range load {
		load[i] = 0
	}
	for i := range coreLoad {
		coreLoad[i] = 0
	}
	ordered := append(l.ordered[:0], candidates...)
	l.ordered = ordered
	// Heaviest demands first so they land on empty CPUs; PID breaks ties for
	// determinism.
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Utilization != ordered[j].Utilization {
			return ordered[i].Utilization > ordered[j].Utilization
		}
		return ordered[i].PID < ordered[j].PID
	})
	out := l.out[:0]
	for _, c := range ordered {
		if c.Utilization <= 0 {
			continue
		}
		best := -1
		bestKey := [2]float64{0, 0}
		pick := func(id int) {
			// Primary key: load of the whole physical core (prefer an idle
			// core over the sibling of a busy one); secondary: load of the
			// logical CPU itself. The incremental coreLoad slice replaces the
			// per-candidate sibling walk (and its per-call slice copy) the
			// previous implementation paid for.
			key := [2]float64{coreLoad[coreOf[id]], load[id]}
			if best == -1 || key[0] < bestKey[0] || (key[0] == bestKey[0] && key[1] < bestKey[1]) {
				best = id
				bestKey = key
			}
		}
		if len(c.Affinity) == 0 {
			for id := 0; id < numLogical; id++ {
				pick(id)
			}
		} else {
			for _, id := range c.Affinity {
				pick(id)
			}
		}
		out = append(out, Assignment{PID: c.PID, LogicalCPU: best, Share: c.Utilization})
		load[best] += c.Utilization
		coreLoad[coreOf[best]] += c.Utilization
	}
	l.out = out
	rebalanceShares(out, l.totals[:numLogical])
	return out, nil
}

// Packing is an energy-aware consolidating policy: it fills logical CPUs in
// index order so that unused cores can drop into deep C-states or lower
// frequencies. This is the kind of "informed decision" the paper motivates.
type Packing struct{}

var _ Scheduler = (*Packing)(nil)

// NewPacking creates the consolidating policy.
func NewPacking() *Packing { return &Packing{} }

// Name implements Scheduler.
func (p *Packing) Name() string { return "packing" }

// Assign implements Scheduler.
func (p *Packing) Assign(candidates []Candidate, topo *cpu.Topology) ([]Assignment, error) {
	if err := validateCandidates(candidates, topo); err != nil {
		return nil, err
	}
	ordered := append([]Candidate(nil), candidates...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].PID < ordered[j].PID })
	capacity := make([]float64, topo.NumLogical())
	for i := range capacity {
		capacity[i] = 1
	}
	var out []Assignment
	for _, c := range ordered {
		if c.Utilization <= 0 {
			continue
		}
		allowed := allowedCPUs(c, topo)
		target := -1
		// First CPU (in id order) that still has room for the whole demand;
		// otherwise the first allowed CPU with any room; otherwise CPU 0 of
		// the allowed set (it will be rebalanced).
		for _, id := range allowed {
			if capacity[id] >= c.Utilization {
				target = id
				break
			}
		}
		if target == -1 {
			for _, id := range allowed {
				if capacity[id] > 0 {
					target = id
					break
				}
			}
		}
		if target == -1 {
			target = allowed[0]
		}
		out = append(out, Assignment{PID: c.PID, LogicalCPU: target, Share: c.Utilization})
		capacity[target] -= c.Utilization
		if capacity[target] < 0 {
			capacity[target] = 0
		}
	}
	rebalanceShares(out, make([]float64, topo.NumLogical()))
	return out, nil
}

// RoundRobin spreads processes across logical CPUs by PID order regardless of
// load. It is deliberately naive and serves as a baseline in tests.
type RoundRobin struct{}

var _ Scheduler = (*RoundRobin)(nil)

// NewRoundRobin creates the round-robin policy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Assign implements Scheduler.
func (r *RoundRobin) Assign(candidates []Candidate, topo *cpu.Topology) ([]Assignment, error) {
	if err := validateCandidates(candidates, topo); err != nil {
		return nil, err
	}
	ordered := append([]Candidate(nil), candidates...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].PID < ordered[j].PID })
	var out []Assignment
	slot := 0
	for _, c := range ordered {
		if c.Utilization <= 0 {
			continue
		}
		allowed := allowedCPUs(c, topo)
		target := allowed[slot%len(allowed)]
		out = append(out, Assignment{PID: c.PID, LogicalCPU: target, Share: c.Utilization})
		slot++
	}
	rebalanceShares(out, make([]float64, topo.NumLogical()))
	return out, nil
}
