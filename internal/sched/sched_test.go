package sched

import (
	"testing"

	"powerapi/internal/cpu"
)

func i3Topology(t *testing.T) *cpu.Topology {
	t.Helper()
	topo, err := cpu.NewTopology(cpu.IntelCorei3_2120())
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func sharesByPID(assignments []Assignment) map[int]Assignment {
	out := make(map[int]Assignment, len(assignments))
	for _, a := range assignments {
		out[a.PID] = a
	}
	return out
}

func TestValidation(t *testing.T) {
	topo := i3Topology(t)
	schedulers := []Scheduler{NewLoadBalancer(), NewPacking(), NewRoundRobin()}
	for _, s := range schedulers {
		t.Run(s.Name(), func(t *testing.T) {
			if _, err := s.Assign([]Candidate{{PID: 1, Utilization: 2}}, topo); err == nil {
				t.Fatal("utilization above 1 should fail")
			}
			if _, err := s.Assign([]Candidate{{PID: 1, Utilization: 0.5, Affinity: []int{9}}}, topo); err == nil {
				t.Fatal("affinity to unknown cpu should fail")
			}
			if _, err := s.Assign([]Candidate{{PID: 1, Utilization: 0.5}}, nil); err == nil {
				t.Fatal("nil topology should fail")
			}
		})
	}
}

func TestLoadBalancerSpreadsAcrossCores(t *testing.T) {
	topo := i3Topology(t)
	lb := NewLoadBalancer()
	// Two heavy processes on a 2-core/4-thread part must land on different
	// physical cores, not on two hyperthreads of the same core.
	assignments, err := lb.Assign([]Candidate{
		{PID: 1, Utilization: 0.9},
		{PID: 2, Utilization: 0.9},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 2 {
		t.Fatalf("got %d assignments, want 2", len(assignments))
	}
	c1, err := topo.CoreOf(assignments[0].LogicalCPU)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := topo.CoreOf(assignments[1].LogicalCPU)
	if err != nil {
		t.Fatal(err)
	}
	if c1 == c2 {
		t.Fatalf("both heavy processes on core %d", c1)
	}
}

func TestLoadBalancerHonoursAffinity(t *testing.T) {
	topo := i3Topology(t)
	lb := NewLoadBalancer()
	assignments, err := lb.Assign([]Candidate{
		{PID: 1, Utilization: 0.9, Affinity: []int{3}},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if assignments[0].LogicalCPU != 3 {
		t.Fatalf("assignment ignored affinity: cpu %d", assignments[0].LogicalCPU)
	}
}

func TestLoadBalancerSkipsIdleCandidates(t *testing.T) {
	topo := i3Topology(t)
	lb := NewLoadBalancer()
	assignments, err := lb.Assign([]Candidate{
		{PID: 1, Utilization: 0},
		{PID: 2, Utilization: 0.4},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(assignments) != 1 || assignments[0].PID != 2 {
		t.Fatalf("assignments = %v, want only pid 2", assignments)
	}
}

func TestLoadBalancerOversubscription(t *testing.T) {
	topo := i3Topology(t)
	lb := NewLoadBalancer()
	// Five full-load processes on four logical CPUs: at least one CPU hosts
	// two processes and their shares must be scaled so the sum stays <= 1.
	var candidates []Candidate
	for pid := 1; pid <= 5; pid++ {
		candidates = append(candidates, Candidate{PID: pid, Utilization: 1})
	}
	assignments, err := lb.Assign(candidates, topo)
	if err != nil {
		t.Fatal(err)
	}
	perCPU := make(map[int]float64)
	for _, a := range assignments {
		perCPU[a.LogicalCPU] += a.Share
	}
	for cpuID, total := range perCPU {
		if total > 1+1e-9 {
			t.Fatalf("cpu %d oversubscribed: %v", cpuID, total)
		}
	}
	if len(assignments) != 5 {
		t.Fatalf("every process must be assigned, got %d", len(assignments))
	}
}

func TestPackingConsolidates(t *testing.T) {
	topo := i3Topology(t)
	p := NewPacking()
	assignments, err := p.Assign([]Candidate{
		{PID: 1, Utilization: 0.3},
		{PID: 2, Utilization: 0.3},
		{PID: 3, Utilization: 0.3},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]bool)
	for _, a := range assignments {
		used[a.LogicalCPU] = true
	}
	if len(used) != 1 {
		t.Fatalf("packing used %d cpus, want 1", len(used))
	}
}

func TestPackingOverflowsToNextCPU(t *testing.T) {
	topo := i3Topology(t)
	p := NewPacking()
	assignments, err := p.Assign([]Candidate{
		{PID: 1, Utilization: 0.8},
		{PID: 2, Utilization: 0.8},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	byPID := sharesByPID(assignments)
	if byPID[1].LogicalCPU == byPID[2].LogicalCPU {
		t.Fatal("packing should overflow to another cpu when full")
	}
}

func TestPackingHonoursAffinity(t *testing.T) {
	topo := i3Topology(t)
	p := NewPacking()
	assignments, err := p.Assign([]Candidate{
		{PID: 7, Utilization: 0.5, Affinity: []int{2, 3}},
	}, topo)
	if err != nil {
		t.Fatal(err)
	}
	if got := assignments[0].LogicalCPU; got != 2 && got != 3 {
		t.Fatalf("packing ignored affinity: cpu %d", got)
	}
}

func TestRoundRobinDistribution(t *testing.T) {
	topo := i3Topology(t)
	rr := NewRoundRobin()
	var candidates []Candidate
	for pid := 1; pid <= 4; pid++ {
		candidates = append(candidates, Candidate{PID: pid, Utilization: 0.5})
	}
	assignments, err := rr.Assign(candidates, topo)
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]bool)
	for _, a := range assignments {
		used[a.LogicalCPU] = true
	}
	if len(used) != 4 {
		t.Fatalf("round robin used %d cpus, want 4", len(used))
	}
}

func TestRoundRobinDeterministic(t *testing.T) {
	topo := i3Topology(t)
	rr := NewRoundRobin()
	candidates := []Candidate{
		{PID: 3, Utilization: 0.2},
		{PID: 1, Utilization: 0.4},
		{PID: 2, Utilization: 0.6},
	}
	a1, err := rr.Assign(candidates, topo)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := rr.Assign(candidates, topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatal("non-deterministic assignment count")
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("non-deterministic assignment at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewLoadBalancer().Name() != "load-balance" {
		t.Fatal("unexpected load balancer name")
	}
	if NewPacking().Name() != "packing" {
		t.Fatal("unexpected packing name")
	}
	if NewRoundRobin().Name() != "round-robin" {
		t.Fatal("unexpected round robin name")
	}
}

func TestEmptyCandidateLists(t *testing.T) {
	topo := i3Topology(t)
	for _, s := range []Scheduler{NewLoadBalancer(), NewPacking(), NewRoundRobin()} {
		assignments, err := s.Assign(nil, topo)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(assignments) != 0 {
			t.Fatalf("%s: assignments for no candidates: %v", s.Name(), assignments)
		}
	}
}
