// Package advisor analyses the power estimations produced by the PowerAPI
// pipeline and turns them into actionable findings — the thesis goal the
// paper states as "identify clearly the energy leaks for optimizing
// automatically the power consumed by software". It implements the
// software-side counterpart of the paper's motivation section: spot the
// largest power consumers, flag energy-inefficient behaviour (high power per
// unit of useful work, busy-waiting, poor cache behaviour) and suggest
// scheduling or DVFS reactions.
package advisor

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/hpc"
)

// Severity classifies a finding.
type Severity int

// Severities, ordered by increasing urgency.
const (
	// SeverityInfo is an observation, not a problem.
	SeverityInfo Severity = iota + 1
	// SeverityAdvisory is a probable inefficiency worth investigating.
	SeverityAdvisory
	// SeverityCritical is a clear energy leak.
	SeverityCritical
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityAdvisory:
		return "advisory"
	case SeverityCritical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Finding is one piece of advice about a monitored process.
type Finding struct {
	PID      int      `json:"pid"`
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Watts is the average active power of the process over the analysis
	// window.
	Watts float64 `json:"watts"`
}

// ProcessSample is one per-process observation fed to the advisor: the power
// estimate of one monitoring round together with the counter deltas it was
// derived from.
type ProcessSample struct {
	PID    int
	Watts  float64
	Window time.Duration
	Deltas hpc.Counts
}

// Thresholds tunes the advisor's rules.
type Thresholds struct {
	// TopConsumerShare flags processes drawing at least this share of the
	// total active power (0.5 = half the active power of the machine).
	TopConsumerShare float64
	// EnergyPerInstructionNJ flags processes whose average energy per
	// retired instruction exceeds this many nanojoules (memory-bound,
	// cache-thrashing behaviour).
	EnergyPerInstructionNJ float64
	// CacheMissRatio flags processes whose LLC miss ratio exceeds this
	// value.
	CacheMissRatio float64
	// IdleWatts flags near-idle processes that still draw this much power
	// (busy-waiting / polling suspects).
	IdleWatts float64
	// IdleIPC is the instruction-per-cycle ceiling below which a process
	// drawing IdleWatts is considered a busy-waiter.
	IdleIPC float64
}

// DefaultThresholds returns conservative defaults.
func DefaultThresholds() Thresholds {
	return Thresholds{
		TopConsumerShare:       0.5,
		EnergyPerInstructionNJ: 8,
		CacheMissRatio:         0.35,
		IdleWatts:              2,
		IdleIPC:                0.25,
	}
}

// Validate checks the thresholds.
func (t Thresholds) Validate() error {
	switch {
	case t.TopConsumerShare <= 0 || t.TopConsumerShare > 1:
		return fmt.Errorf("advisor: top consumer share %v out of (0,1]", t.TopConsumerShare)
	case t.EnergyPerInstructionNJ <= 0:
		return errors.New("advisor: energy per instruction threshold must be positive")
	case t.CacheMissRatio <= 0 || t.CacheMissRatio > 1:
		return fmt.Errorf("advisor: cache miss ratio %v out of (0,1]", t.CacheMissRatio)
	case t.IdleWatts < 0:
		return errors.New("advisor: idle watts threshold must be non-negative")
	case t.IdleIPC <= 0:
		return errors.New("advisor: idle IPC threshold must be positive")
	}
	return nil
}

// Advisor accumulates monitoring rounds and produces findings on demand. It
// is safe for concurrent use: the monitoring pipeline feeds it from an
// internal subscriber goroutine (WithAdvisorFeed) while callers read
// Findings/MeanWatts/Ranking mid-run.
type Advisor struct {
	thresholds Thresholds

	mu                      sync.Mutex
	totalActiveWattsSeconds float64
	perPID                  map[int]*accumulator
}

type accumulator struct {
	wattsSeconds float64
	seconds      float64
	instructions float64
	cycles       float64
	cacheRefs    float64
	cacheMisses  float64
}

// New creates an advisor with the given thresholds.
func New(thresholds Thresholds) (*Advisor, error) {
	if err := thresholds.Validate(); err != nil {
		return nil, err
	}
	return &Advisor{
		thresholds: thresholds,
		perPID:     make(map[int]*accumulator),
	}, nil
}

// Observe feeds one per-process sample to the advisor.
func (a *Advisor) Observe(sample ProcessSample) error {
	if sample.Window <= 0 {
		return fmt.Errorf("advisor: non-positive window %v", sample.Window)
	}
	if sample.Watts < 0 {
		return fmt.Errorf("advisor: negative power %v", sample.Watts)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	acc, ok := a.perPID[sample.PID]
	if !ok {
		acc = &accumulator{}
		a.perPID[sample.PID] = acc
	}
	seconds := sample.Window.Seconds()
	acc.wattsSeconds += sample.Watts * seconds
	acc.seconds += seconds
	acc.instructions += float64(sample.Deltas.Get(hpc.Instructions))
	acc.cycles += float64(sample.Deltas.Get(hpc.Cycles))
	acc.cacheRefs += float64(sample.Deltas.Get(hpc.CacheReferences))
	acc.cacheMisses += float64(sample.Deltas.Get(hpc.CacheMisses))
	a.totalActiveWattsSeconds += sample.Watts * seconds
	return nil
}

// ObserveReport feeds a whole PowerAPI aggregated report (power only — the
// caller should prefer Observe when counter deltas are available, which
// enables the micro-architectural rules).
func (a *Advisor) ObserveReport(report core.AggregatedReport, window time.Duration) error {
	for pid, watts := range report.PerPID {
		if err := a.Observe(ProcessSample{PID: pid, Watts: watts, Window: window}); err != nil {
			return err
		}
	}
	return nil
}

// MeanWatts returns the average active power of a process over everything
// observed so far.
func (a *Advisor) MeanWatts(pid int) float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	acc, ok := a.perPID[pid]
	if !ok || acc.seconds == 0 {
		return 0
	}
	return acc.wattsSeconds / acc.seconds
}

// Findings analyses everything observed so far and returns the findings,
// most severe first (ties broken by descending power).
func (a *Advisor) Findings() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	var out []Finding
	for pid, acc := range a.perPID {
		if acc.seconds == 0 {
			continue
		}
		meanWatts := acc.wattsSeconds / acc.seconds

		if a.totalActiveWattsSeconds > 0 {
			share := acc.wattsSeconds / a.totalActiveWattsSeconds
			if share >= a.thresholds.TopConsumerShare {
				out = append(out, Finding{
					PID:      pid,
					Rule:     "top-consumer",
					Severity: SeverityAdvisory,
					Watts:    meanWatts,
					Message: fmt.Sprintf("process %d draws %.0f%% of the active power (%.1f W average); "+
						"it is the primary optimisation target", pid, share*100, meanWatts),
				})
			}
		}

		if acc.instructions > 0 {
			energyNJ := acc.wattsSeconds / acc.instructions * 1e9
			if energyNJ >= a.thresholds.EnergyPerInstructionNJ {
				out = append(out, Finding{
					PID:      pid,
					Rule:     "high-energy-per-instruction",
					Severity: SeverityCritical,
					Watts:    meanWatts,
					Message: fmt.Sprintf("process %d spends %.1f nJ per instruction (threshold %.1f): "+
						"memory-bound behaviour; improve locality or co-locate with compute-bound work",
						pid, energyNJ, a.thresholds.EnergyPerInstructionNJ),
				})
			}
		}

		if acc.cacheRefs > 0 {
			missRatio := acc.cacheMisses / acc.cacheRefs
			if missRatio >= a.thresholds.CacheMissRatio {
				out = append(out, Finding{
					PID:      pid,
					Rule:     "cache-thrashing",
					Severity: SeverityAdvisory,
					Watts:    meanWatts,
					Message: fmt.Sprintf("process %d misses the last-level cache on %.0f%% of its references; "+
						"cache misses dominate the power model, so reducing the working set saves energy",
						pid, missRatio*100),
				})
			}
		}

		if acc.cycles > 0 {
			ipc := acc.instructions / acc.cycles
			if meanWatts >= a.thresholds.IdleWatts && ipc <= a.thresholds.IdleIPC {
				out = append(out, Finding{
					PID:      pid,
					Rule:     "busy-waiting",
					Severity: SeverityCritical,
					Watts:    meanWatts,
					Message: fmt.Sprintf("process %d burns %.1f W at an IPC of %.2f: it keeps cores out of "+
						"C-states without retiring work; replace polling with blocking waits", pid, meanWatts, ipc),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		if out[i].Watts != out[j].Watts {
			return out[i].Watts > out[j].Watts
		}
		return out[i].PID < out[j].PID
	})
	return out
}

// Ranking returns the monitored PIDs ordered by descending average power —
// "identify the largest power consumers", the paper's first requirement for
// informed scheduling decisions.
func (a *Advisor) Ranking() []Finding {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Finding, 0, len(a.perPID))
	for pid, acc := range a.perPID {
		if acc.seconds == 0 {
			continue
		}
		out = append(out, Finding{
			PID:      pid,
			Rule:     "ranking",
			Severity: SeverityInfo,
			Watts:    acc.wattsSeconds / acc.seconds,
			Message:  fmt.Sprintf("process %d averages %.2f W", pid, acc.wattsSeconds/acc.seconds),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Watts != out[j].Watts {
			return out[i].Watts > out[j].Watts
		}
		return out[i].PID < out[j].PID
	})
	return out
}
