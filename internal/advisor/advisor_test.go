package advisor

import (
	"strings"
	"testing"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/hpc"
)

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Fatalf("default thresholds invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Thresholds)
	}{
		{name: "zero share", mutate: func(th *Thresholds) { th.TopConsumerShare = 0 }},
		{name: "share above 1", mutate: func(th *Thresholds) { th.TopConsumerShare = 1.5 }},
		{name: "zero energy", mutate: func(th *Thresholds) { th.EnergyPerInstructionNJ = 0 }},
		{name: "zero miss ratio", mutate: func(th *Thresholds) { th.CacheMissRatio = 0 }},
		{name: "negative idle watts", mutate: func(th *Thresholds) { th.IdleWatts = -1 }},
		{name: "zero idle ipc", mutate: func(th *Thresholds) { th.IdleIPC = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			th := DefaultThresholds()
			tt.mutate(&th)
			if err := th.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
			if _, err := New(th); err == nil {
				t.Fatal("New should reject invalid thresholds")
			}
		})
	}
}

func TestObserveValidation(t *testing.T) {
	a, err := New(DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Observe(ProcessSample{PID: 1, Watts: 1, Window: 0}); err == nil {
		t.Fatal("zero window should fail")
	}
	if err := a.Observe(ProcessSample{PID: 1, Watts: -1, Window: time.Second}); err == nil {
		t.Fatal("negative power should fail")
	}
}

func TestTopConsumerFinding(t *testing.T) {
	a, _ := New(DefaultThresholds())
	for i := 0; i < 10; i++ {
		_ = a.Observe(ProcessSample{PID: 1, Watts: 20, Window: time.Second})
		_ = a.Observe(ProcessSample{PID: 2, Watts: 2, Window: time.Second})
	}
	findings := a.Findings()
	var found bool
	for _, f := range findings {
		if f.PID == 1 && f.Rule == "top-consumer" {
			found = true
			if !strings.Contains(f.Message, "primary optimisation target") {
				t.Fatalf("unexpected message %q", f.Message)
			}
		}
		if f.PID == 2 && f.Rule == "top-consumer" {
			t.Fatal("small consumer must not be flagged as top consumer")
		}
	}
	if !found {
		t.Fatalf("dominant consumer not flagged: %+v", findings)
	}
	if a.MeanWatts(1) != 20 || a.MeanWatts(2) != 2 || a.MeanWatts(99) != 0 {
		t.Fatal("MeanWatts mismatch")
	}
}

func TestEnergyPerInstructionAndCacheFindings(t *testing.T) {
	a, _ := New(DefaultThresholds())
	// A memory-thrashing process: 10 W for only 1e8 instructions/s
	// (100 nJ/instr) with a 50% miss ratio.
	for i := 0; i < 5; i++ {
		_ = a.Observe(ProcessSample{
			PID:    7,
			Watts:  10,
			Window: time.Second,
			Deltas: hpc.Counts{
				hpc.Instructions:    1e8,
				hpc.Cycles:          2e8,
				hpc.CacheReferences: 1e7,
				hpc.CacheMisses:     5e6,
			},
		})
	}
	// A healthy compute-bound process: 10 W for 5e9 instructions/s.
	for i := 0; i < 5; i++ {
		_ = a.Observe(ProcessSample{
			PID:    8,
			Watts:  10,
			Window: time.Second,
			Deltas: hpc.Counts{
				hpc.Instructions:    5e9,
				hpc.Cycles:          3e9,
				hpc.CacheReferences: 5e6,
				hpc.CacheMisses:     1e5,
			},
		})
	}
	findings := a.Findings()
	rulesByPID := make(map[int]map[string]bool)
	for _, f := range findings {
		if rulesByPID[f.PID] == nil {
			rulesByPID[f.PID] = make(map[string]bool)
		}
		rulesByPID[f.PID][f.Rule] = true
	}
	if !rulesByPID[7]["high-energy-per-instruction"] {
		t.Fatalf("memory-thrashing process not flagged: %+v", findings)
	}
	if !rulesByPID[7]["cache-thrashing"] {
		t.Fatalf("high miss ratio not flagged: %+v", findings)
	}
	if rulesByPID[8]["high-energy-per-instruction"] || rulesByPID[8]["cache-thrashing"] {
		t.Fatalf("healthy process wrongly flagged: %+v", findings)
	}
	// Critical findings sort before advisories.
	if len(findings) > 1 && findings[0].Severity < findings[1].Severity {
		t.Fatal("findings not sorted by severity")
	}
}

func TestBusyWaitingFinding(t *testing.T) {
	a, _ := New(DefaultThresholds())
	// Spinning process: 3 W, lots of cycles, almost no instructions retired
	// per cycle.
	_ = a.Observe(ProcessSample{
		PID:    5,
		Watts:  3,
		Window: time.Second,
		Deltas: hpc.Counts{
			hpc.Instructions: 1e8,
			hpc.Cycles:       3e9,
		},
	})
	var found bool
	for _, f := range a.Findings() {
		if f.PID == 5 && f.Rule == "busy-waiting" {
			found = true
			if f.Severity != SeverityCritical {
				t.Fatalf("busy waiting severity = %v", f.Severity)
			}
		}
	}
	if !found {
		t.Fatal("busy-waiting process not flagged")
	}
}

func TestObserveReportAndRanking(t *testing.T) {
	a, _ := New(DefaultThresholds())
	report := core.AggregatedReport{
		Timestamp: time.Second,
		PerPID:    map[int]float64{10: 5, 11: 15, 12: 1},
	}
	if err := a.ObserveReport(report, time.Second); err != nil {
		t.Fatal(err)
	}
	ranking := a.Ranking()
	if len(ranking) != 3 {
		t.Fatalf("ranking has %d entries, want 3", len(ranking))
	}
	if ranking[0].PID != 11 || ranking[1].PID != 10 || ranking[2].PID != 12 {
		t.Fatalf("ranking order wrong: %+v", ranking)
	}
	for _, r := range ranking {
		if r.Severity != SeverityInfo || r.Rule != "ranking" {
			t.Fatalf("unexpected ranking entry %+v", r)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityInfo.String() != "info" || SeverityAdvisory.String() != "advisory" || SeverityCritical.String() != "critical" {
		t.Fatal("unexpected severity strings")
	}
	if Severity(42).String() == "" {
		t.Fatal("unknown severity should render")
	}
}

func TestNoFindingsWithoutObservations(t *testing.T) {
	a, _ := New(DefaultThresholds())
	if len(a.Findings()) != 0 || len(a.Ranking()) != 0 {
		t.Fatal("advisor with no observations should produce nothing")
	}
}
