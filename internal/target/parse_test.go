package target

import "testing"

func TestParseRoundTrips(t *testing.T) {
	for _, tgt := range []Target{Process(1000), Cgroup("web/api"), Machine(), VM("vm-web")} {
		parsed, err := Parse(tgt.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", tgt.String(), err)
		}
		if parsed != tgt {
			t.Fatalf("Parse(%q) = %v, want %v", tgt.String(), parsed, tgt)
		}
	}
}

func TestParseRejectsMalformedTargets(t *testing.T) {
	for _, s := range []string{"", "pid:", "pid:abc", "pid:0", "pid:-3", "cgroup:", "vm:", "machines", "web"} {
		if _, err := Parse(s); err == nil {
			t.Fatalf("Parse(%q) should fail", s)
		}
	}
}
