package target

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestConstructorsAndValidity(t *testing.T) {
	cases := []struct {
		target Target
		valid  bool
		str    string
	}{
		{Process(1000), true, "pid:1000"},
		{Cgroup("web/api"), true, "cgroup:web/api"},
		{Machine(), true, "machine"},
		{Target{}, false, ""},
		{Process(0), false, ""},
		{Process(-1), false, ""},
		{Cgroup(""), false, ""},
		{Target{Kind: KindProcess, PID: 1, Path: "web"}, false, ""},
		{Target{Kind: KindCgroup, PID: 1, Path: "web"}, false, ""},
		{Target{Kind: KindMachine, PID: 1}, false, ""},
	}
	for _, c := range cases {
		if got := c.target.Valid(); got != c.valid {
			t.Fatalf("%+v Valid() = %v, want %v", c.target, got, c.valid)
		}
		if c.str != "" && c.target.String() != c.str {
			t.Fatalf("%+v String() = %q, want %q", c.target, c.target.String(), c.str)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if KindProcess.String() != "process" || KindCgroup.String() != "cgroup" || KindMachine.String() != "machine" {
		t.Fatal("kind names broken")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatalf("unknown kind String() = %q", Kind(99).String())
	}
	out, err := json.Marshal(KindCgroup)
	if err != nil || string(out) != `"cgroup"` {
		t.Fatalf("kind marshals to %s, %v", out, err)
	}
}

func TestTargetsAreMapKeys(t *testing.T) {
	m := map[Target]int{
		Process(7):    1,
		Cgroup("web"): 2,
		Machine():     3,
	}
	if m[Process(7)] != 1 || m[Cgroup("web")] != 2 || m[Machine()] != 3 {
		t.Fatal("targets must be usable as map keys")
	}
}

func TestRouteKeyPreservesPIDPartitioning(t *testing.T) {
	// Process targets must keep the raw PID as the routing key so a pipeline
	// without cgroup targets partitions exactly as the per-PID pipeline did.
	for _, pid := range []int{1, 1000, 99999} {
		if Process(pid).RouteKey() != uint64(pid) {
			t.Fatalf("Process(%d).RouteKey() = %d", pid, Process(pid).RouteKey())
		}
	}
	// Cgroup keys are stable and distinct per path.
	a, b := Cgroup("web").RouteKey(), Cgroup("db").RouteKey()
	if a == b {
		t.Fatal("distinct cgroup paths should hash differently")
	}
	if a != Cgroup("web").RouteKey() {
		t.Fatal("cgroup route keys must be deterministic")
	}
}

func TestJSONMarshal(t *testing.T) {
	out, err := json.Marshal(Cgroup("web/api"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.Contains(s, `"kind":"cgroup"`) || !strings.Contains(s, `"path":"web/api"`) {
		t.Fatalf("cgroup target marshals to %s", s)
	}
	if strings.Contains(s, "pid") {
		t.Fatalf("cgroup target should omit the pid field: %s", s)
	}
}
