package target

import (
	"hash/fnv"
	"testing"
)

// referenceKey is the digest RouteKey produced before the inline rewrite:
// FNV-1a over prefix+identity via hash/fnv. The rewrite must not move any
// target to a different shard.
func referenceKey(prefix, s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(prefix))
	h.Write([]byte(s))
	return h.Sum64()
}

func TestRouteKeyMatchesReferenceFNV(t *testing.T) {
	cases := []struct {
		target Target
		want   uint64
	}{
		{Cgroup("web/api"), referenceKey("cgroup:", "web/api")},
		{Cgroup(""), referenceKey("cgroup:", "")},
		{VM("vm-web"), referenceKey("vm:", "vm-web")},
		{Node("node-7"), referenceKey("node:", "node-7")},
		{Process(1234), 1234},
		{Machine(), 0},
	}
	for _, c := range cases {
		if got := c.target.RouteKey(); got != c.want {
			t.Errorf("RouteKey(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestRouteKeyDoesNotAllocate(t *testing.T) {
	targets := []Target{Cgroup("web/api/deep/path"), VM("vm-web"), Node("node-7"), Process(42)}
	var sink uint64
	allocs := testing.AllocsPerRun(100, func() {
		for _, tg := range targets {
			sink += tg.RouteKey()
		}
	})
	if allocs != 0 {
		t.Errorf("RouteKey allocated %.1f times per run, want 0", allocs)
	}
	_ = sink
}
