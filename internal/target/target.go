// Package target defines the identity of a monitoring target — the unit the
// PowerAPI pipeline attributes power to. The paper's toolkit monitors OS
// processes, but the same pipeline generalizes to control groups of processes
// (containers, slices) and to the machine itself, so every layer of the
// middleware — sources, routers, messages, aggregation, reports — is keyed by
// a Target instead of a raw PID.
package target

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies what a Target identifies.
type Kind int

// Target kinds.
const (
	// KindProcess identifies one OS process by PID.
	KindProcess Kind = iota + 1
	// KindCgroup identifies a control group by its hierarchy path
	// ("web", "web/api", …). A cgroup's power is the power of its member
	// processes, descendants included.
	KindCgroup
	// KindMachine identifies the whole machine (machine-scope measurements).
	KindMachine
	// KindVM identifies a virtual machine by name: a cgroup subtree or PID
	// set designated as a VM on the host, whose power the host delegates to a
	// nested guest-side PowerAPI instance over the VM bridge.
	KindVM
	// KindNode identifies one machine of a fleet by node name — the unit the
	// fleet collector aggregates. A node's power is the total a daemon on that
	// machine estimated for itself; it exists only in the collector tier and
	// never appears inside a single host's pipeline.
	KindNode
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindProcess:
		return "process"
	case KindCgroup:
		return "cgroup"
	case KindMachine:
		return "machine"
	case KindVM:
		return "vm"
	case KindNode:
		return "node"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// MarshalText implements encoding.TextMarshaler so kinds serialise as their
// names rather than opaque integers.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// Target identifies one monitoring target. The zero value is invalid. Targets
// are comparable and usable as map keys: a process target is identified by
// its PID, a cgroup target by its hierarchy path.
type Target struct {
	// Kind tells which of the identifying fields is meaningful.
	Kind Kind `json:"kind"`
	// PID identifies process targets.
	PID int `json:"pid,omitempty"`
	// Path is the hierarchy path of cgroup targets ("web/api").
	Path string `json:"path,omitempty"`
	// Name is the name of VM targets ("vm-web").
	Name string `json:"name,omitempty"`
}

// Process returns the target identifying one OS process.
func Process(pid int) Target { return Target{Kind: KindProcess, PID: pid} }

// Cgroup returns the target identifying a control group by hierarchy path.
func Cgroup(path string) Target { return Target{Kind: KindCgroup, Path: path} }

// Machine returns the target identifying the whole machine.
func Machine() Target { return Target{Kind: KindMachine} }

// VM returns the target identifying a virtual machine by name.
func VM(name string) Target { return Target{Kind: KindVM, Name: name} }

// Node returns the target identifying one fleet machine by node name.
func Node(name string) Target { return Target{Kind: KindNode, Name: name} }

// Valid reports whether the target is well-formed.
func (t Target) Valid() bool {
	switch t.Kind {
	case KindProcess:
		return t.PID > 0 && t.Path == "" && t.Name == ""
	case KindCgroup:
		return t.Path != "" && t.PID == 0 && t.Name == ""
	case KindMachine:
		return t.PID == 0 && t.Path == "" && t.Name == ""
	case KindVM, KindNode:
		return t.Name != "" && t.PID == 0 && t.Path == ""
	default:
		return false
	}
}

// String implements fmt.Stringer ("pid:1000", "cgroup:web/api", "vm:vm-web",
// "machine").
func (t Target) String() string {
	switch t.Kind {
	case KindProcess:
		return fmt.Sprintf("pid:%d", t.PID)
	case KindCgroup:
		return "cgroup:" + t.Path
	case KindMachine:
		return "machine"
	case KindVM:
		return "vm:" + t.Name
	case KindNode:
		return "node:" + t.Name
	default:
		return fmt.Sprintf("target(%d)", int(t.Kind))
	}
}

// Parse resolves the string form produced by String back into a target:
// "pid:1000", "cgroup:web/api", "vm:vm-web" or "machine".
func Parse(s string) (Target, error) {
	switch {
	case s == "machine":
		return Machine(), nil
	case strings.HasPrefix(s, "pid:"):
		pid, err := strconv.Atoi(strings.TrimPrefix(s, "pid:"))
		if err != nil || pid <= 0 {
			return Target{}, fmt.Errorf("target: invalid pid in %q", s)
		}
		return Process(pid), nil
	case strings.HasPrefix(s, "cgroup:"):
		path := strings.TrimPrefix(s, "cgroup:")
		if path == "" {
			return Target{}, fmt.Errorf("target: empty cgroup path in %q", s)
		}
		return Cgroup(path), nil
	case strings.HasPrefix(s, "vm:"):
		name := strings.TrimPrefix(s, "vm:")
		if name == "" {
			return Target{}, fmt.Errorf("target: empty vm name in %q", s)
		}
		return VM(name), nil
	case strings.HasPrefix(s, "node:"):
		name := strings.TrimPrefix(s, "node:")
		if name == "" {
			return Target{}, fmt.Errorf("target: empty node name in %q", s)
		}
		return Node(name), nil
	default:
		return Target{}, fmt.Errorf("target: cannot parse %q (want \"pid:N\", \"cgroup:PATH\", \"vm:NAME\", \"node:NAME\" or \"machine\")", s)
	}
}

// RouteKey returns the partitioning key the pipeline's consistent-hash router
// uses to pin a target to a shard. Process targets keep their raw PID as the
// key, so a pipeline without cgroup targets partitions exactly as the
// original per-PID pipeline did.
//
//powerapi:hotpath
func (t Target) RouteKey() uint64 {
	switch t.Kind {
	case KindProcess:
		return uint64(t.PID)
	case KindCgroup:
		return fnv1a("cgroup:", t.Path)
	case KindVM:
		return fnv1a("vm:", t.Name)
	case KindNode:
		return fnv1a("node:", t.Name)
	default:
		return 0
	}
}

// fnv1a hashes prefix+s with FNV-1a inline — same digest as hash/fnv over
// the concatenated bytes, but with no hash-object or []byte conversion
// allocations: RouteKey runs once per sample on the history write path.
func fnv1a(prefix, s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(prefix); i++ {
		h ^= uint64(prefix[i])
		h *= prime64
	}
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
