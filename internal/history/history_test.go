package history

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerapi/internal/target"
)

func seconds(n int) time.Duration { return time.Duration(n) * time.Second }

func TestRingEvictsOldestBeyondCapacity(t *testing.T) {
	s := NewStore(3)
	pid := target.Process(7)
	for i := 1; i <= 5; i++ {
		s.Record(pid, seconds(i), float64(i))
	}
	samples := s.Samples(pid)
	if len(samples) != 3 {
		t.Fatalf("retained %d samples, want capacity 3", len(samples))
	}
	for i, want := range []int{3, 4, 5} {
		if samples[i].Timestamp != seconds(want) || samples[i].Watts != float64(want) {
			t.Fatalf("sample %d = %+v, want round %d", i, samples[i], want)
		}
	}
	if s.Capacity() != 3 {
		t.Fatalf("Capacity() = %d", s.Capacity())
	}
	if got := s.Samples(target.Process(99)); got != nil {
		t.Fatalf("unknown target returned %v", got)
	}
}

func TestDefaultCapacity(t *testing.T) {
	if NewStore(0).Capacity() != DefaultCapacity {
		t.Fatal("non-positive capacity should select the default")
	}
}

func TestRingsGrowLazilyAndRemoveDropsTargets(t *testing.T) {
	s := NewStore(1024)
	pid := target.Process(1)
	s.Record(pid, seconds(1), 1)
	s.Record(pid, seconds(2), 2)
	// A short-lived target holds only the samples it produced, not a
	// full-capacity ring.
	samples := s.Samples(pid)
	if len(samples) != 2 || cap(samples) >= 1024 {
		t.Fatalf("lazy ring retained %d samples (cap %d)", len(samples), cap(samples))
	}
	s.Remove(pid, seconds(2))
	if s.Samples(pid) != nil || len(s.Targets()) != 0 {
		t.Fatal("Remove should drop the target's ring")
	}
	s.Remove(pid, seconds(2)) // removing an unknown target is a no-op

	// A late sample from a round at or before the removal cutoff must not
	// resurrect the ring (the history writer runs behind an async
	// subscription); a sample from a newer round is a genuine re-attach.
	s.Record(pid, seconds(2), 2)
	if got := s.Samples(pid); got != nil {
		t.Fatalf("late sample resurrected the ring: %v", got)
	}
	s.Record(pid, seconds(3), 3)
	if got := s.Samples(pid); len(got) != 1 || got[0].Watts != 3 {
		t.Fatalf("re-attach after removal retained %v", got)
	}
}

func TestTombstonesArePrunedByNewerRounds(t *testing.T) {
	s := NewStore(8)
	pid := target.Process(1)
	s.Record(pid, seconds(1), 1)
	s.Remove(pid, seconds(1))
	if got := s.tombstoneCount(); got != 1 {
		t.Fatalf("tombstoneCount = %d, want the removed pid", got)
	}
	// The next round's batch outdates the tombstone: rounds arrive in FIFO
	// order, so no later sample can carry a timestamp at or below the cutoff.
	// RecordBatch prunes every shard's tombstones, not only the shards the
	// round's samples land in.
	s.RecordBatch(seconds(2), []TargetSample{{Target: target.Machine(), Watts: 30}})
	if got := s.tombstoneCount(); got != 0 {
		t.Fatalf("tombstones not pruned: %d left", got)
	}
}

func TestRemoveSubtreeDropsNestedCgroups(t *testing.T) {
	s := NewStore(8)
	s.Record(target.Cgroup("web"), seconds(1), 10)
	s.Record(target.Cgroup("web/api"), seconds(1), 5)
	s.Record(target.Cgroup("webapp"), seconds(1), 7) // sibling, not nested
	s.Record(target.Process(1), seconds(1), 2)
	s.RemoveSubtree("web", seconds(1))
	stats, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("after RemoveSubtree Query returned %v", stats)
	}
	for _, st := range stats {
		if st.Target.Kind == target.KindCgroup && st.Target.Path != "webapp" {
			t.Fatalf("subtree removal left %v", st.Target)
		}
	}
	// Late nested-group samples are tombstoned like any other removal.
	s.Record(target.Cgroup("web/api"), seconds(1), 5)
	if s.Samples(target.Cgroup("web/api")) != nil {
		t.Fatal("late nested sample resurrected the ring")
	}
}

func TestRecordBatchIsAtomic(t *testing.T) {
	s := NewStore(8)
	s.RecordBatch(seconds(1), []TargetSample{
		{Target: target.Machine(), Watts: 30},
		{Target: target.Process(1), Watts: 10},
		{Target: target.Process(2), Watts: 20},
	})
	stats, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("batch recorded %d targets, want 3", len(stats))
	}
	for _, st := range stats {
		if st.Samples != 1 || st.First != seconds(1) {
			t.Fatalf("batch row %+v", st)
		}
	}
}

func TestQueryAggregates(t *testing.T) {
	s := NewStore(16)
	pid := target.Process(1)
	watts := []float64{10, 30, 20, 40, 50}
	for i, w := range watts {
		s.Record(pid, seconds(i+1), w)
	}
	stats, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("Query returned %d rows", len(stats))
	}
	st := stats[0]
	if st.Samples != 5 || st.First != seconds(1) || st.Last != seconds(5) {
		t.Fatalf("window bounds %+v", st)
	}
	if math.Abs(st.AvgWatts-30) > 1e-12 || st.MaxWatts != 50 || st.LastWatts != 50 {
		t.Fatalf("aggregates %+v", st)
	}
	// Nearest-rank p95 of 5 samples is the 5th ordered value.
	if st.P95Watts != 50 {
		t.Fatalf("P95Watts = %v", st.P95Watts)
	}

	windowed, err := s.Query(Query{From: seconds(2), To: seconds(4)})
	if err != nil {
		t.Fatal(err)
	}
	st = windowed[0]
	if st.Samples != 3 || st.MaxWatts != 40 || math.Abs(st.AvgWatts-30) > 1e-12 {
		t.Fatalf("windowed aggregates %+v", st)
	}
}

func TestQueryFilters(t *testing.T) {
	s := NewStore(8)
	s.Record(target.Process(1), seconds(1), 5)
	s.Record(target.Process(2), seconds(1), 50)
	s.Record(target.Cgroup("web"), seconds(1), 40)
	s.Record(target.Cgroup("web/api"), seconds(1), 15)
	s.Record(target.Cgroup("db"), seconds(1), 25)
	s.Record(target.Machine(), seconds(1), 100)

	if got := s.Targets(); len(got) != 6 {
		t.Fatalf("Targets() = %v", got)
	}

	byKind, err := s.Query(Query{Kinds: []target.Kind{target.KindCgroup}})
	if err != nil {
		t.Fatal(err)
	}
	if len(byKind) != 3 {
		t.Fatalf("kind filter returned %d rows", len(byKind))
	}

	subtree, err := s.Query(Query{CgroupSubtree: "web"})
	if err != nil {
		t.Fatal(err)
	}
	if len(subtree) != 2 {
		t.Fatalf("subtree filter returned %d rows: %v", len(subtree), subtree)
	}
	for _, st := range subtree {
		if st.Target.Path != "web" && st.Target.Path != "web/api" {
			t.Fatalf("subtree leaked %v", st.Target)
		}
	}

	byTarget, err := s.Query(Query{Targets: []target.Target{target.Process(2), target.Machine()}})
	if err != nil {
		t.Fatal(err)
	}
	if len(byTarget) != 2 {
		t.Fatalf("target filter returned %d rows", len(byTarget))
	}

	hot, err := s.Query(Query{MinWatts: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 3 { // pid 2, web, machine
		t.Fatalf("min-watts filter returned %d rows: %v", len(hot), hot)
	}
}

func TestQueryValidation(t *testing.T) {
	s := NewStore(4)
	if _, err := s.Query(Query{From: seconds(5), To: seconds(1)}); err == nil {
		t.Fatal("inverted range should fail")
	}
	if _, err := s.Query(Query{MinWatts: -1}); err == nil {
		t.Fatal("negative min-watts should fail")
	}
	if _, err := s.Query(Query{CgroupSubtree: "a//b"}); err == nil {
		t.Fatal("malformed subtree should fail")
	}
	if _, err := s.Query(Query{Targets: []target.Target{{}}}); err == nil {
		t.Fatal("invalid target should fail")
	}
	if !errors.Is(ErrDisabled, ErrDisabled) {
		t.Fatal("ErrDisabled must be comparable")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.95, 10}, {0.5, 5}, {0.05, 1}, {1.0, 10}} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Fatalf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if percentile(nil, 0.95) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

// TestReattachSeesOnlyPostReattachSamples is the tombstone round-trip
// regression: detaching a target tombstones it at the last round it could
// have appeared in, so a late replay of an older round must not resurrect the
// ring — but a genuine re-attach produces newer rounds that clear the
// tombstone, and Query must then see only the post-reattach samples.
func TestReattachSeesOnlyPostReattachSamples(t *testing.T) {
	s := NewStore(8)
	pid := target.Process(7)
	s.RecordBatch(seconds(1), []TargetSample{{Target: pid, Watts: 10}})
	s.RecordBatch(seconds(2), []TargetSample{{Target: pid, Watts: 11}})

	// Detach: the pipeline removes the target with the last collected round
	// as the cutoff.
	s.Remove(pid, seconds(2))
	if got, _ := s.Query(Query{}); len(got) != 0 {
		t.Fatalf("after detach the store should be empty, got %v", got)
	}
	// A late in-flight sample of the detached era must stay dead.
	s.Record(pid, seconds(2), 12)
	if got := s.Samples(pid); len(got) != 0 {
		t.Fatalf("late pre-detach sample should be dropped, got %v", got)
	}

	// Re-attach: newer rounds repopulate the ring from scratch.
	s.RecordBatch(seconds(3), []TargetSample{{Target: pid, Watts: 20}})
	s.RecordBatch(seconds(4), []TargetSample{{Target: pid, Watts: 22}})
	stats, err := s.Query(Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("want 1 target, got %v", stats)
	}
	st := stats[0]
	if st.Samples != 2 || st.First != seconds(3) || st.Last != seconds(4) {
		t.Fatalf("query must see only post-reattach samples, got %+v", st)
	}
	if st.AvgWatts != 21 || st.MaxWatts != 22 || st.LastWatts != 22 {
		t.Fatalf("post-reattach aggregates wrong: %+v", st)
	}
}

func TestOccupancy(t *testing.T) {
	s := NewStore(4)
	if targets, samples := s.Occupancy(); targets != 0 || samples != 0 {
		t.Fatalf("empty store occupancy = (%d, %d)", targets, samples)
	}
	s.RecordBatch(seconds(1), []TargetSample{
		{Target: target.Process(1), Watts: 1},
		{Target: target.VM("vm-a"), Watts: 2},
	})
	s.RecordBatch(seconds(2), []TargetSample{{Target: target.Process(1), Watts: 3}})
	targets, samples := s.Occupancy()
	if targets != 2 || samples != 3 {
		t.Fatalf("occupancy = (%d, %d), want (2, 3)", targets, samples)
	}
	// Rings are capacity-bounded, so occupancy is too.
	for i := 3; i < 20; i++ {
		s.RecordBatch(seconds(i), []TargetSample{{Target: target.Process(1), Watts: 1}})
	}
	if _, samples := s.Occupancy(); samples != 4+1 {
		t.Fatalf("bounded occupancy = %d, want 5", samples)
	}
}
