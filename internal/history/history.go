// Package history retains recent power monitoring rounds in fixed-capacity
// per-target ring buffers and answers windowed aggregate queries over them
// (average / maximum / 95th-percentile watts per target). The monitoring
// pipeline feeds a Store through a dedicated subscriber; the query API is
// what the HTTP serving layer and Monitor.Query expose, so a middleware
// deployment can answer "what did cgroup web draw over the last minute?"
// without replaying raw report streams.
package history

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/target"
)

// DefaultCapacity is the per-target ring capacity used when a Store is
// created with a non-positive capacity.
const DefaultCapacity = 1024

// Sample is one retained observation of one target.
type Sample struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// Watts is the power attributed to the target for the round.
	Watts float64 `json:"watts"`
}

// ring is a capacity-bounded circular buffer of samples, oldest overwritten
// first. Timestamps are appended in increasing order. The backing slice
// grows lazily (amortised by append) up to the capacity, so a short-lived
// target costs only the samples it actually produced, not a full ring.
type ring struct {
	capacity int
	samples  []Sample
	head     int // index of the oldest sample once the ring is full
}

func (r *ring) push(s Sample) {
	if len(r.samples) < r.capacity {
		r.samples = append(r.samples, s)
		return
	}
	r.samples[r.head] = s
	r.head = (r.head + 1) % r.capacity
}

// snapshot appends the retained samples, oldest first, to dst.
func (r *ring) snapshot(dst []Sample) []Sample {
	for i := 0; i < len(r.samples); i++ {
		dst = append(dst, r.samples[(r.head+i)%len(r.samples)])
	}
	return dst
}

// TargetSample is one target's entry of a round handed to RecordBatch.
type TargetSample struct {
	Target target.Target
	Watts  float64
}

// Store retains the most recent samples of every observed target.
type Store struct {
	capacity int

	mu    sync.RWMutex
	rings map[target.Target]*ring
	// tombstones records, per removed target, the last round it could have
	// legitimately appeared in. The pipeline's history writer runs behind an
	// asynchronous subscription, so a Remove can race a still-queued older
	// round; the cutoff lets recordLocked drop such late samples instead of
	// resurrecting the ring. A tombstone is cleared the moment the target
	// produces a sample from a newer round (a genuine re-attach).
	tombstones map[target.Target]time.Duration
}

// NewStore creates a store retaining up to capacity samples per target
// (DefaultCapacity when capacity is not positive).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		capacity:   capacity,
		rings:      make(map[target.Target]*ring),
		tombstones: make(map[target.Target]time.Duration),
	}
}

// Capacity returns the per-target ring capacity.
func (s *Store) Capacity() int { return s.capacity }

// Record retains one observation of one target. Older samples beyond the
// capacity are evicted, oldest first.
func (s *Store) Record(t target.Target, ts time.Duration, watts float64) {
	s.mu.Lock()
	s.recordLocked(t, ts, watts)
	s.mu.Unlock()
}

// RecordBatch retains one round's samples for many targets under a single
// lock acquisition: the whole round becomes visible to queries atomically,
// so a concurrent Query never observes a torn round (some targets updated,
// others not), and the hot path pays one lock per round instead of one per
// target. Rounds reach the store in timestamp order (the pipeline's history
// writer is a FIFO subscription), so tombstones older than this round can no
// longer match any future sample and are pruned — the tombstone map stays
// bounded by the targets removed since the previous round, not by every
// target that ever existed.
func (s *Store) RecordBatch(ts time.Duration, samples []TargetSample) {
	s.mu.Lock()
	for _, sm := range samples {
		s.recordLocked(sm.Target, ts, sm.Watts)
	}
	for t, cutoff := range s.tombstones {
		if cutoff < ts {
			delete(s.tombstones, t)
		}
	}
	s.mu.Unlock()
}

func (s *Store) recordLocked(t target.Target, ts time.Duration, watts float64) {
	if cutoff, ok := s.tombstones[t]; ok {
		if ts <= cutoff {
			return // late sample of a removed target
		}
		delete(s.tombstones, t) // the target is genuinely back
	}
	r, ok := s.rings[t]
	if !ok {
		r = &ring{capacity: s.capacity}
		s.rings[t] = r
	}
	r.push(Sample{Timestamp: ts, Watts: watts})
}

// Remove drops every retained sample of one target and ignores any late
// in-flight sample stamped at or before cutoff (the last round the target
// could have appeared in). The monitoring pipeline calls it when a target is
// detached (or a process leaves its monitored cgroup), so a long-lived
// daemon's store stays bounded by the live target set instead of
// accumulating rings for every PID that ever existed.
func (s *Store) Remove(t target.Target, cutoff time.Duration) {
	s.mu.Lock()
	s.removeLocked(t, cutoff)
	s.mu.Unlock()
}

// RemoveSubtree removes every cgroup target inside the subtree rooted at
// root (the root itself and its descendants): detaching a cgroup target must
// forget the nested groups the hierarchical rollup recorded alongside it.
// Subtree groups that are still monitored in their own right repopulate from
// the next round.
func (s *Store) RemoveSubtree(root string, cutoff time.Duration) {
	s.mu.Lock()
	for t := range s.rings {
		if t.Kind == target.KindCgroup && cgroup.InSubtree(t.Path, root) {
			s.removeLocked(t, cutoff)
		}
	}
	s.mu.Unlock()
}

func (s *Store) removeLocked(t target.Target, cutoff time.Duration) {
	delete(s.rings, t)
	if cutoff >= s.tombstones[t] {
		s.tombstones[t] = cutoff
	}
}

// Occupancy reports how full the store is: the number of targets with
// retained samples and the total samples across their rings. The serving
// layer exposes both as gauges, so an operator can watch the ring memory a
// long-lived daemon actually holds against targets × Capacity.
func (s *Store) Occupancy() (targets, samples int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.rings {
		samples += len(r.samples)
	}
	return len(s.rings), samples
}

// Targets returns every target the store has retained samples for, sorted by
// their string form.
func (s *Store) Targets() []target.Target {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]target.Target, 0, len(s.rings))
	for t := range s.rings {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Samples returns a copy of the retained samples of one target, oldest first.
func (s *Store) Samples(t target.Target) []Sample {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.rings[t]
	if !ok {
		return nil
	}
	return r.snapshot(make([]Sample, 0, len(r.samples)))
}

// Query selects and aggregates retained samples. The zero value aggregates
// everything the store retains.
type Query struct {
	// From/To bound the time range (inclusive). A zero To means "no upper
	// bound"; a zero From means "from the oldest retained sample".
	From time.Duration `json:"from,omitempty"`
	To   time.Duration `json:"to,omitempty"`
	// Targets restricts the result to an explicit target set (empty: all).
	Targets []target.Target `json:"targets,omitempty"`
	// Kinds restricts the result to the given target kinds (empty: all).
	Kinds []target.Kind `json:"kinds,omitempty"`
	// CgroupSubtree keeps only cgroup targets inside the given subtree (the
	// path itself and its descendants). Process and machine targets are
	// excluded when it is set.
	CgroupSubtree string `json:"cgroupSubtree,omitempty"`
	// MinWatts excludes targets whose average watts over the selected window
	// fall below this threshold.
	MinWatts float64 `json:"minWatts,omitempty"`
}

// Stats is the windowed aggregate of one target's retained samples.
type Stats struct {
	// Target is the subject of the row.
	Target target.Target `json:"target"`
	// Samples is how many retained samples fell inside the window.
	Samples int `json:"samples"`
	// First/Last are the window's observed bounds.
	First time.Duration `json:"first"`
	Last  time.Duration `json:"last"`
	// AvgWatts / MaxWatts / P95Watts aggregate the window; LastWatts is the
	// most recent sample inside it.
	AvgWatts  float64 `json:"avgWatts"`
	MaxWatts  float64 `json:"maxWatts"`
	P95Watts  float64 `json:"p95Watts"`
	LastWatts float64 `json:"lastWatts"`
}

// Query aggregates the retained samples matching q, one Stats row per target,
// sorted by target. Targets with no sample in the window are omitted.
func (s *Store) Query(q Query) ([]Stats, error) {
	if q.To != 0 && q.To < q.From {
		return nil, fmt.Errorf("history: query range inverted (from %v, to %v)", q.From, q.To)
	}
	if q.MinWatts < 0 {
		return nil, fmt.Errorf("history: min-watts must not be negative, got %g", q.MinWatts)
	}
	if q.CgroupSubtree != "" {
		if err := cgroup.ValidatePath(q.CgroupSubtree); err != nil {
			return nil, fmt.Errorf("history: query cgroup subtree: %w", err)
		}
	}
	var targetSet map[target.Target]bool
	if len(q.Targets) > 0 {
		targetSet = make(map[target.Target]bool, len(q.Targets))
		for _, t := range q.Targets {
			if !t.Valid() {
				return nil, fmt.Errorf("history: invalid query target %v", t)
			}
			targetSet[t] = true
		}
	}
	var kindSet map[target.Kind]bool
	if len(q.Kinds) > 0 {
		kindSet = make(map[target.Kind]bool, len(q.Kinds))
		for _, k := range q.Kinds {
			kindSet[k] = true
		}
	}

	s.mu.RLock()
	type entry struct {
		t       target.Target
		samples []Sample
	}
	entries := make([]entry, 0, len(s.rings))
	scratch := make([]Sample, 0, s.capacity)
	for t, r := range s.rings {
		if targetSet != nil && !targetSet[t] {
			continue
		}
		if kindSet != nil && !kindSet[t.Kind] {
			continue
		}
		if q.CgroupSubtree != "" {
			if t.Kind != target.KindCgroup || !cgroup.InSubtree(t.Path, q.CgroupSubtree) {
				continue
			}
		}
		scratch = r.snapshot(scratch[:0])
		selected := make([]Sample, 0, len(scratch))
		for _, sm := range scratch {
			if sm.Timestamp < q.From {
				continue
			}
			if q.To != 0 && sm.Timestamp > q.To {
				continue
			}
			selected = append(selected, sm)
		}
		if len(selected) > 0 {
			entries = append(entries, entry{t: t, samples: selected})
		}
	}
	s.mu.RUnlock()

	out := make([]Stats, 0, len(entries))
	for _, e := range entries {
		st := aggregate(e.t, e.samples)
		if st.AvgWatts < q.MinWatts {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.String() < out[j].Target.String() })
	return out, nil
}

// aggregate computes the Stats row of one target's in-window samples (which
// must be non-empty and sorted by timestamp, as rings retain them).
func aggregate(t target.Target, samples []Sample) Stats {
	st := Stats{
		Target:  t,
		Samples: len(samples),
		First:   samples[0].Timestamp,
		Last:    samples[len(samples)-1].Timestamp,
		MaxWatts: func() float64 {
			max := math.Inf(-1)
			for _, s := range samples {
				if s.Watts > max {
					max = s.Watts
				}
			}
			return max
		}(),
		LastWatts: samples[len(samples)-1].Watts,
	}
	sum := 0.0
	watts := make([]float64, len(samples))
	for i, s := range samples {
		sum += s.Watts
		watts[i] = s.Watts
	}
	st.AvgWatts = sum / float64(len(samples))
	sort.Float64s(watts)
	st.P95Watts = percentile(watts, 0.95)
	return st
}

// percentile returns the p-quantile of sorted values using the
// nearest-rank method (p in (0,1]).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ErrDisabled is returned by consumers that query a monitor without a
// configured history store.
var ErrDisabled = errors.New("history: retention disabled (enable it with WithHistory)")
