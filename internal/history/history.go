// Package history retains recent power monitoring rounds in fixed-capacity
// per-target ring buffers and answers windowed aggregate queries over them
// (average / maximum / 95th-percentile watts per target). The monitoring
// pipeline feeds a Store through a dedicated subscriber; the query API is
// what the HTTP serving layer and Monitor.Query expose, so a middleware
// deployment can answer "what did cgroup web draw over the last minute?"
// without replaying raw report streams.
package history

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"powerapi/internal/cgroup"
	"powerapi/internal/target"
)

// DefaultCapacity is the per-target ring capacity used when a Store is
// created with a non-positive capacity.
const DefaultCapacity = 1024

// Sample is one retained observation of one target.
type Sample struct {
	// Timestamp is the simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// Watts is the power attributed to the target for the round.
	Watts float64 `json:"watts"`
}

// ring is a capacity-bounded circular buffer of samples, oldest overwritten
// first. Timestamps are appended in increasing order. The backing slice
// grows lazily (amortised by append) up to the capacity, so a short-lived
// target costs only the samples it actually produced, not a full ring.
type ring struct {
	capacity int
	samples  []Sample
	head     int // index of the oldest sample once the ring is full
}

//powerapi:hotpath
func (r *ring) push(s Sample) {
	if len(r.samples) < r.capacity {
		r.samples = append(r.samples, s)
		return
	}
	r.samples[r.head] = s
	r.head = (r.head + 1) % r.capacity
}

// snapshot appends the retained samples, oldest first, to dst.
func (r *ring) snapshot(dst []Sample) []Sample {
	for i := 0; i < len(r.samples); i++ {
		dst = append(dst, r.samples[(r.head+i)%len(r.samples)])
	}
	return dst
}

// TargetSample is one target's entry of a round handed to RecordBatch.
type TargetSample struct {
	Target target.Target
	Watts  float64
}

// numShards is the width of the store's lock sharding. Targets are spread
// across shards by RouteKey, so concurrent writers (and a writer against
// concurrent readers) mostly touch disjoint locks; 16 is comfortably wider
// than the pipelines a process realistically runs.
const numShards = 16

// storeShard is one lock-domain of the store: a private mutex over a slice of
// the target space.
type storeShard struct {
	mu    sync.RWMutex
	rings map[target.Target]*ring
	// tombstones records, per removed target, the last round it could have
	// legitimately appeared in. The pipeline's history writer runs behind an
	// asynchronous subscription, so a Remove can race a still-queued older
	// round; the cutoff lets recordLocked drop such late samples instead of
	// resurrecting the ring. A tombstone is cleared the moment the target
	// produces a sample from a newer round (a genuine re-attach).
	tombstones map[target.Target]time.Duration
}

// Store retains the most recent samples of every observed target. Its state
// is lock-sharded by target: every operation on a single target takes exactly
// one shard lock, and RecordBatch takes each involved shard's lock once per
// round.
//
// Atomicity is per shard, not per round: a concurrent Query can observe a
// round's samples for the targets of one shard before those of another. Within
// a shard a round is still all-or-nothing, and per-target sample order is
// always timestamp order — only the cross-target cut of an in-flight round is
// relaxed. That trade buys the write path a ~numShards reduction in lock
// contention against concurrent queries at 100k-target scale.
type Store struct {
	capacity int
	shards   [numShards]storeShard

	// batchMu serialises RecordBatch so the per-shard grouping scratch below
	// can be reused round over round without allocation. Rounds arrive from a
	// single FIFO subscription, so this lock is uncontended in practice.
	batchMu sync.Mutex
	grouped [numShards][]TargetSample
}

// NewStore creates a store retaining up to capacity samples per target
// (DefaultCapacity when capacity is not positive).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	s := &Store{capacity: capacity}
	for i := range s.shards {
		s.shards[i].rings = make(map[target.Target]*ring)
		s.shards[i].tombstones = make(map[target.Target]time.Duration)
	}
	return s
}

// shardFor maps a target to its lock-domain.
//
//powerapi:hotpath
func (s *Store) shardFor(t target.Target) *storeShard {
	return &s.shards[t.RouteKey()%numShards]
}

// Capacity returns the per-target ring capacity.
func (s *Store) Capacity() int { return s.capacity }

// Record retains one observation of one target. Older samples beyond the
// capacity are evicted, oldest first.
//
//powerapi:hotpath
func (s *Store) Record(t target.Target, ts time.Duration, watts float64) {
	sh := s.shardFor(t)
	sh.mu.Lock()
	sh.recordLocked(t, ts, watts, s.capacity)
	sh.mu.Unlock()
}

// RecordBatch retains one round's samples for many targets, taking each
// involved shard's lock exactly once: the round becomes visible to queries
// atomically per shard (see the Store contract for the cross-shard cut), and
// the hot path pays at most numShards lock acquisitions per round instead of
// one per target. Rounds reach the store in timestamp order (the pipeline's
// history writer is a FIFO subscription), so tombstones older than this round
// can no longer match any future sample and are pruned — the tombstone maps
// stay bounded by the targets removed since the previous round, not by every
// target that ever existed.
//
//powerapi:hotpath
func (s *Store) RecordBatch(ts time.Duration, samples []TargetSample) {
	s.batchMu.Lock()
	defer s.batchMu.Unlock()
	for i := range s.grouped {
		s.grouped[i] = s.grouped[i][:0]
	}
	for _, sm := range samples {
		i := sm.Target.RouteKey() % numShards
		s.grouped[i] = append(s.grouped[i], sm)
	}
	for i := range s.shards {
		group := s.grouped[i]
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, sm := range group {
			sh.recordLocked(sm.Target, ts, sm.Watts, s.capacity)
		}
		for t, cutoff := range sh.tombstones {
			if cutoff < ts {
				delete(sh.tombstones, t)
			}
		}
		sh.mu.Unlock()
	}
}

//powerapi:hotpath
func (sh *storeShard) recordLocked(t target.Target, ts time.Duration, watts float64, capacity int) {
	if cutoff, ok := sh.tombstones[t]; ok {
		if ts <= cutoff {
			return // late sample of a removed target
		}
		delete(sh.tombstones, t) // the target is genuinely back
	}
	r, ok := sh.rings[t]
	if !ok {
		//powerapi:allow hotpath one ring per target lifetime, not per round
		r = &ring{capacity: capacity}
		sh.rings[t] = r
	}
	r.push(Sample{Timestamp: ts, Watts: watts})
}

// Remove drops every retained sample of one target and ignores any late
// in-flight sample stamped at or before cutoff (the last round the target
// could have appeared in). The monitoring pipeline calls it when a target is
// detached (or a process leaves its monitored cgroup), so a long-lived
// daemon's store stays bounded by the live target set instead of
// accumulating rings for every PID that ever existed.
func (s *Store) Remove(t target.Target, cutoff time.Duration) {
	sh := s.shardFor(t)
	sh.mu.Lock()
	sh.removeLocked(t, cutoff)
	sh.mu.Unlock()
}

// RemoveSubtree removes every cgroup target inside the subtree rooted at
// root (the root itself and its descendants): detaching a cgroup target must
// forget the nested groups the hierarchical rollup recorded alongside it.
// Subtree groups that are still monitored in their own right repopulate from
// the next round.
func (s *Store) RemoveSubtree(root string, cutoff time.Duration) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for t := range sh.rings {
			if t.Kind == target.KindCgroup && cgroup.InSubtree(t.Path, root) {
				sh.removeLocked(t, cutoff)
			}
		}
		sh.mu.Unlock()
	}
}

func (sh *storeShard) removeLocked(t target.Target, cutoff time.Duration) {
	delete(sh.rings, t)
	if cutoff >= sh.tombstones[t] {
		sh.tombstones[t] = cutoff
	}
}

// tombstoneCount returns how many removed targets still carry a tombstone
// across all shards (tests and diagnostics).
func (s *Store) tombstoneCount() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.tombstones)
		sh.mu.RUnlock()
	}
	return n
}

// Occupancy reports how full the store is: the number of targets with
// retained samples and the total samples across their rings. The serving
// layer exposes both as gauges, so an operator can watch the ring memory a
// long-lived daemon actually holds against targets × Capacity.
func (s *Store) Occupancy() (targets, samples int) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		targets += len(sh.rings)
		for _, r := range sh.rings {
			samples += len(r.samples)
		}
		sh.mu.RUnlock()
	}
	return targets, samples
}

// Targets returns every target the store has retained samples for, sorted by
// their string form.
func (s *Store) Targets() []target.Target {
	var out []target.Target
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for t := range sh.rings {
			out = append(out, t)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Samples returns a copy of the retained samples of one target, oldest first.
func (s *Store) Samples(t target.Target) []Sample {
	sh := s.shardFor(t)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	r, ok := sh.rings[t]
	if !ok {
		return nil
	}
	return r.snapshot(make([]Sample, 0, len(r.samples)))
}

// Query selects and aggregates retained samples. The zero value aggregates
// everything the store retains.
type Query struct {
	// From/To bound the time range (inclusive). A zero To means "no upper
	// bound"; a zero From means "from the oldest retained sample".
	From time.Duration `json:"from,omitempty"`
	To   time.Duration `json:"to,omitempty"`
	// Targets restricts the result to an explicit target set (empty: all).
	Targets []target.Target `json:"targets,omitempty"`
	// Kinds restricts the result to the given target kinds (empty: all).
	Kinds []target.Kind `json:"kinds,omitempty"`
	// CgroupSubtree keeps only cgroup targets inside the given subtree (the
	// path itself and its descendants). Process and machine targets are
	// excluded when it is set.
	CgroupSubtree string `json:"cgroupSubtree,omitempty"`
	// MinWatts excludes targets whose average watts over the selected window
	// fall below this threshold.
	MinWatts float64 `json:"minWatts,omitempty"`
}

// Stats is the windowed aggregate of one target's retained samples.
type Stats struct {
	// Target is the subject of the row.
	Target target.Target `json:"target"`
	// Samples is how many retained samples fell inside the window.
	Samples int `json:"samples"`
	// First/Last are the window's observed bounds.
	First time.Duration `json:"first"`
	Last  time.Duration `json:"last"`
	// AvgWatts / MaxWatts / P95Watts aggregate the window; LastWatts is the
	// most recent sample inside it.
	AvgWatts  float64 `json:"avgWatts"`
	MaxWatts  float64 `json:"maxWatts"`
	P95Watts  float64 `json:"p95Watts"`
	LastWatts float64 `json:"lastWatts"`
}

// Query aggregates the retained samples matching q, one Stats row per target,
// sorted by target. Targets with no sample in the window are omitted.
func (s *Store) Query(q Query) ([]Stats, error) {
	if q.To != 0 && q.To < q.From {
		return nil, fmt.Errorf("history: query range inverted (from %v, to %v)", q.From, q.To)
	}
	if q.MinWatts < 0 {
		return nil, fmt.Errorf("history: min-watts must not be negative, got %g", q.MinWatts)
	}
	if q.CgroupSubtree != "" {
		if err := cgroup.ValidatePath(q.CgroupSubtree); err != nil {
			return nil, fmt.Errorf("history: query cgroup subtree: %w", err)
		}
	}
	var targetSet map[target.Target]bool
	if len(q.Targets) > 0 {
		targetSet = make(map[target.Target]bool, len(q.Targets))
		for _, t := range q.Targets {
			if !t.Valid() {
				return nil, fmt.Errorf("history: invalid query target %v", t)
			}
			targetSet[t] = true
		}
	}
	var kindSet map[target.Kind]bool
	if len(q.Kinds) > 0 {
		kindSet = make(map[target.Kind]bool, len(q.Kinds))
		for _, k := range q.Kinds {
			kindSet[k] = true
		}
	}

	// The snapshot is taken shard by shard: a round being recorded concurrently
	// may be cut between shards, but each target's series is consistent.
	type entry struct {
		t       target.Target
		samples []Sample
	}
	var entries []entry
	scratch := make([]Sample, 0, s.capacity)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for t, r := range sh.rings {
			if targetSet != nil && !targetSet[t] {
				continue
			}
			if kindSet != nil && !kindSet[t.Kind] {
				continue
			}
			if q.CgroupSubtree != "" {
				if t.Kind != target.KindCgroup || !cgroup.InSubtree(t.Path, q.CgroupSubtree) {
					continue
				}
			}
			scratch = r.snapshot(scratch[:0])
			selected := make([]Sample, 0, len(scratch))
			for _, sm := range scratch {
				if sm.Timestamp < q.From {
					continue
				}
				if q.To != 0 && sm.Timestamp > q.To {
					continue
				}
				selected = append(selected, sm)
			}
			if len(selected) > 0 {
				entries = append(entries, entry{t: t, samples: selected})
			}
		}
		sh.mu.RUnlock()
	}

	out := make([]Stats, 0, len(entries))
	for _, e := range entries {
		st := aggregate(e.t, e.samples)
		if st.AvgWatts < q.MinWatts {
			continue
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Target.String() < out[j].Target.String() })
	return out, nil
}

// aggregate computes the Stats row of one target's in-window samples (which
// must be non-empty and sorted by timestamp, as rings retain them).
func aggregate(t target.Target, samples []Sample) Stats {
	st := Stats{
		Target:  t,
		Samples: len(samples),
		First:   samples[0].Timestamp,
		Last:    samples[len(samples)-1].Timestamp,
		MaxWatts: func() float64 {
			max := math.Inf(-1)
			for _, s := range samples {
				if s.Watts > max {
					max = s.Watts
				}
			}
			return max
		}(),
		LastWatts: samples[len(samples)-1].Watts,
	}
	sum := 0.0
	watts := make([]float64, len(samples))
	for i, s := range samples {
		sum += s.Watts
		watts[i] = s.Watts
	}
	st.AvgWatts = sum / float64(len(samples))
	sort.Float64s(watts)
	st.P95Watts = percentile(watts, 0.95)
	return st
}

// percentile returns the p-quantile of sorted values using the
// nearest-rank method (p in (0,1]).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// ErrDisabled is returned by consumers that query a monitor without a
// configured history store.
var ErrDisabled = errors.New("history: retention disabled (enable it with WithHistory)")
