package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrorReport summarises the discrepancy between an estimated series and a
// reference (ground-truth) series. These are the figures of merit used in the
// paper's evaluation section: it reports a *median* error of 15 % on
// SPECjbb2013 and quotes *average* errors for the comparator models.
type ErrorReport struct {
	// MedianAPE is the median absolute percentage error (the paper's primary
	// metric for Figure 3).
	MedianAPE float64
	// MAPE is the mean absolute percentage error (the metric quoted for the
	// comparator models in Section 4).
	MAPE float64
	// RMSE is the root mean squared error in watts.
	RMSE float64
	// MaxAPE is the worst-case absolute percentage error.
	MaxAPE float64
	// Bias is the mean signed error (estimate - reference) in watts.
	Bias float64
	// N is the number of paired samples compared.
	N int
}

// String renders the report in a compact human-readable form.
func (r ErrorReport) String() string {
	return fmt.Sprintf("median error %.1f%%, mean error %.1f%%, RMSE %.2f W, max %.1f%%, bias %+.2f W (n=%d)",
		r.MedianAPE*100, r.MAPE*100, r.RMSE, r.MaxAPE*100, r.Bias, r.N)
}

// CompareSeries computes an ErrorReport for estimate against reference.
// Reference samples equal to zero are skipped for the percentage metrics to
// avoid division by zero but still contribute to RMSE and bias.
func CompareSeries(estimate, reference []float64) (ErrorReport, error) {
	if len(estimate) != len(reference) {
		return ErrorReport{}, fmt.Errorf("stats: series of length %d and %d: %w",
			len(estimate), len(reference), ErrDimensionMismatch)
	}
	if len(estimate) == 0 {
		return ErrorReport{}, errors.New("stats: empty series")
	}
	apes := make([]float64, 0, len(estimate))
	var sqSum, biasSum float64
	for i := range estimate {
		diff := estimate[i] - reference[i]
		sqSum += diff * diff
		biasSum += diff
		if reference[i] != 0 {
			apes = append(apes, math.Abs(diff)/math.Abs(reference[i]))
		}
	}
	report := ErrorReport{
		RMSE: math.Sqrt(sqSum / float64(len(estimate))),
		Bias: biasSum / float64(len(estimate)),
		N:    len(estimate),
	}
	if len(apes) > 0 {
		report.MedianAPE = Median(apes)
		report.MAPE = Mean(apes)
		maxAPE := apes[0]
		for _, v := range apes[1:] {
			if v > maxAPE {
				maxAPE = v
			}
		}
		report.MaxAPE = maxAPE
	}
	return report, nil
}

// MAPE is a convenience wrapper returning only the mean absolute percentage
// error of estimate against reference.
func MAPE(estimate, reference []float64) (float64, error) {
	r, err := CompareSeries(estimate, reference)
	if err != nil {
		return 0, err
	}
	return r.MAPE, nil
}

// MedianAPE is a convenience wrapper returning only the median absolute
// percentage error of estimate against reference.
func MedianAPE(estimate, reference []float64) (float64, error) {
	r, err := CompareSeries(estimate, reference)
	if err != nil {
		return 0, err
	}
	return r.MedianAPE, nil
}

// RMSE returns the root mean squared error of estimate against reference.
func RMSE(estimate, reference []float64) (float64, error) {
	r, err := CompareSeries(estimate, reference)
	if err != nil {
		return 0, err
	}
	return r.RMSE, nil
}
