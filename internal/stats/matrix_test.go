package stats

import (
	"errors"
	"math"
	"testing"
)

func TestNewMatrixValidation(t *testing.T) {
	tests := []struct {
		name       string
		rows, cols int
		wantErr    bool
	}{
		{name: "valid", rows: 3, cols: 2, wantErr: false},
		{name: "zero rows", rows: 0, cols: 2, wantErr: true},
		{name: "zero cols", rows: 2, cols: 0, wantErr: true},
		{name: "negative", rows: -1, cols: 1, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewMatrix(tt.rows, tt.cols)
			if (err != nil) != tt.wantErr {
				t.Fatalf("NewMatrix(%d,%d) error = %v, wantErr %v", tt.rows, tt.cols, err, tt.wantErr)
			}
			if err == nil {
				if m.Rows() != tt.rows || m.Cols() != tt.cols {
					t.Fatalf("dims = %dx%d, want %dx%d", m.Rows(), m.Cols(), tt.rows, tt.cols)
				}
			}
		})
	}
}

func TestMatrixFromRows(t *testing.T) {
	if _, err := MatrixFromRows(nil); err == nil {
		t.Fatal("MatrixFromRows(nil) should fail")
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("ragged rows: got %v, want ErrDimensionMismatch", err)
	}
	m, err := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatalf("MatrixFromRows: %v", err)
	}
	if got := m.At(1, 0); got != 3 {
		t.Fatalf("At(1,0) = %v, want 3", got)
	}
	m.Set(1, 0, 9)
	if got := m.At(1, 0); got != 9 {
		t.Fatalf("At(1,0) after Set = %v, want 9", got)
	}
}

func TestTranspose(t *testing.T) {
	m, err := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose dims %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnownProduct(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("Mul at (%d,%d) = %v, want %v", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}})
	b, _ := MatrixFromRows([][]float64{{1, 2}})
	if _, err := a.Mul(b); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("expected ErrDimensionMismatch, got %v", err)
	}
	if _, err := a.MulVec([]float64{1, 2, 3}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("MulVec: expected ErrDimensionMismatch, got %v", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got, err := a.MulVec([]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v, want [6 15]", got)
	}
}

func TestSolveLinearSystem(t *testing.T) {
	// 2x + y = 5 ; x + 3y = 10 -> x = 1, y = 3
	a, _ := MatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := SolveLinearSystem(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-9 || math.Abs(x[1]-3) > 1e-9 {
		t.Fatalf("solution = %v, want [1 3]", x)
	}
}

func TestSolveLinearSystemSingular(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinearSystem(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveLinearSystemShapeErrors(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if _, err := SolveLinearSystem(a, []float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("non-square: expected ErrDimensionMismatch, got %v", err)
	}
	sq, _ := MatrixFromRows([][]float64{{1, 0}, {0, 1}})
	if _, err := SolveLinearSystem(sq, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("short vector: expected ErrDimensionMismatch, got %v", err)
	}
}

func TestSolveLinearSystemPivoting(t *testing.T) {
	// Leading zero forces a pivot swap.
	a, _ := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLinearSystem(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-3) > 1e-9 || math.Abs(x[1]-2) > 1e-9 {
		t.Fatalf("solution = %v, want [3 2]", x)
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a, _ := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := SolveLinearSystem(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(1, 1) != 3 || b[0] != 1 || b[1] != 2 {
		t.Fatal("SolveLinearSystem mutated its inputs")
	}
}
