// Package stats implements the statistical machinery behind the power-model
// learning process of the paper: multivariate ordinary-least-squares
// regression, Pearson and Spearman correlation (the paper's planned
// counter-selection strategy), and the error metrics used by the evaluation
// (median absolute percentage error, MAPE, RMSE, R²).
//
// Everything is implemented on plain float64 slices with no external
// dependencies; matrices are small (a handful of counters, a few hundred
// samples), so numerical simplicity is preferred over raw performance.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when the shapes of the provided matrices
// or vectors are incompatible.
var ErrDimensionMismatch = errors.New("stats: dimension mismatch")

// ErrSingular is returned when a linear system cannot be solved because the
// design matrix is singular (e.g. perfectly collinear predictors).
var ErrSingular = errors.New("stats: singular matrix")

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix creates a rows×cols matrix initialised to zero.
func NewMatrix(rows, cols int) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("stats: invalid matrix dimensions %dx%d", rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}, nil
}

// MatrixFromRows builds a matrix from a slice of equally sized rows.
func MatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, errors.New("stats: empty matrix")
	}
	cols := len(rows[0])
	m, err := NewMatrix(len(rows), cols)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Transpose returns the transpose of m as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := &Matrix{rows: m.cols, cols: m.rows, data: make([]float64, len(m.data))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m·other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.cols != other.rows {
		return nil, fmt.Errorf("stats: cannot multiply %dx%d by %dx%d: %w",
			m.rows, m.cols, other.rows, other.cols, ErrDimensionMismatch)
	}
	out, err := NewMatrix(m.rows, other.cols)
	if err != nil {
		return nil, err
	}
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			for j := 0; j < other.cols; j++ {
				out.data[i*out.cols+j] += a * other.data[k*other.cols+j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) ([]float64, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("stats: cannot multiply %dx%d by vector of length %d: %w",
			m.rows, m.cols, len(v), ErrDimensionMismatch)
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		var sum float64
		for j := 0; j < m.cols; j++ {
			sum += m.data[i*m.cols+j] * v[j]
		}
		out[i] = sum
	}
	return out, nil
}

// SolveLinearSystem solves A·x = b for x using Gaussian elimination with
// partial pivoting. A must be square with len(b) rows.
func SolveLinearSystem(a *Matrix, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("stats: matrix is %dx%d, want square: %w", a.rows, a.cols, ErrDimensionMismatch)
	}
	if len(b) != n {
		return nil, fmt.Errorf("stats: vector length %d, want %d: %w", len(b), n, ErrDimensionMismatch)
	}

	// Build the augmented system on a copy so the caller's data is untouched.
	aug := make([][]float64, n)
	for i := 0; i < n; i++ {
		aug[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			aug[i][j] = a.At(i, j)
		}
		aug[i][n] = b[i]
	}

	for col := 0; col < n; col++ {
		// Partial pivoting: find the row with the largest magnitude in col.
		pivot := col
		maxAbs := math.Abs(aug[col][col])
		for r := col + 1; r < n; r++ {
			if abs := math.Abs(aug[r][col]); abs > maxAbs {
				maxAbs = abs
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, ErrSingular
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]

		for r := col + 1; r < n; r++ {
			factor := aug[r][col] / aug[col][col]
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				aug[r][c] -= factor * aug[col][c]
			}
		}
	}

	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := aug[i][n]
		for j := i + 1; j < n; j++ {
			sum -= aug[i][j] * x[j]
		}
		x[i] = sum / aug[i][i]
	}
	return x, nil
}
