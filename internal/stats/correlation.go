package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var sum float64
	for _, v := range xs {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Median returns the median of xs (0 for an empty slice). The input is not
// modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, errors.New("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Pearson returns the Pearson product-moment correlation coefficient between
// x and y.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: series of length %d and %d: %w", len(x), len(y), ErrDimensionMismatch)
	}
	if len(x) < 2 {
		return 0, errors.New("stats: need at least two samples for correlation")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// ranks returns the fractional ranks of xs (average rank for ties), 1-based.
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	r := make([]float64, n)
	i := 0
	for i < n {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

// Spearman returns the Spearman rank correlation coefficient between x and y.
// This is the counter-selection statistic the paper plans to adopt ("we plan
// to improve our learning algorithm by using the Spearman rank correlation").
func Spearman(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("stats: series of length %d and %d: %w", len(x), len(y), ErrDimensionMismatch)
	}
	if len(x) < 2 {
		return 0, errors.New("stats: need at least two samples for correlation")
	}
	return Pearson(ranks(x), ranks(y))
}

// CorrelationRanking orders predictors (columns of x) by the absolute value
// of their correlation with y, strongest first.
type CorrelationRanking struct {
	// Columns holds predictor column indices, strongest correlation first.
	Columns []int
	// Scores holds the corresponding correlation coefficients.
	Scores []float64
}

// CorrelationMethod selects the statistic used to rank counters.
type CorrelationMethod int

// Supported correlation methods.
const (
	// MethodPearson is the linear correlation used by the paper's current
	// pipeline.
	MethodPearson CorrelationMethod = iota + 1
	// MethodSpearman is the rank correlation the paper proposes as future
	// improvement.
	MethodSpearman
)

// String implements fmt.Stringer.
func (m CorrelationMethod) String() string {
	switch m {
	case MethodPearson:
		return "pearson"
	case MethodSpearman:
		return "spearman"
	default:
		return fmt.Sprintf("CorrelationMethod(%d)", int(m))
	}
}

// RankPredictors computes the chosen correlation of every column of x against
// y and returns the columns ordered by decreasing |correlation|.
func RankPredictors(x [][]float64, y []float64, method CorrelationMethod) (*CorrelationRanking, error) {
	if len(x) == 0 {
		return nil, errors.New("stats: no observations")
	}
	p := len(x[0])
	cols := make([][]float64, p)
	for j := 0; j < p; j++ {
		cols[j] = make([]float64, len(x))
	}
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: observation %d has %d predictors, want %d: %w",
				i, len(row), p, ErrDimensionMismatch)
		}
		for j, v := range row {
			cols[j][i] = v
		}
	}
	type scored struct {
		col   int
		score float64
	}
	scoredCols := make([]scored, 0, p)
	for j := 0; j < p; j++ {
		var (
			c   float64
			err error
		)
		switch method {
		case MethodSpearman:
			c, err = Spearman(cols[j], y)
		case MethodPearson:
			c, err = Pearson(cols[j], y)
		default:
			return nil, fmt.Errorf("stats: unknown correlation method %v", method)
		}
		if err != nil {
			return nil, fmt.Errorf("stats: rank predictor %d: %w", j, err)
		}
		scoredCols = append(scoredCols, scored{col: j, score: c})
	}
	sort.SliceStable(scoredCols, func(a, b int) bool {
		return math.Abs(scoredCols[a].score) > math.Abs(scoredCols[b].score)
	})
	out := &CorrelationRanking{
		Columns: make([]int, p),
		Scores:  make([]float64, p),
	}
	for i, s := range scoredCols {
		out.Columns[i] = s.col
		out.Scores[i] = s.score
	}
	return out, nil
}
