package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean     float64
		variance float64
	}{
		{name: "empty", xs: nil, mean: 0, variance: 0},
		{name: "single", xs: []float64{5}, mean: 5, variance: 0},
		{name: "simple", xs: []float64{1, 2, 3, 4}, mean: 2.5, variance: 1.25},
		{name: "constant", xs: []float64{7, 7, 7}, mean: 7, variance: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.mean, 1e-12) {
				t.Fatalf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); !almostEqual(got, tt.variance, 1e-12) {
				t.Fatalf("Variance = %v, want %v", got, tt.variance)
			}
			if got := StdDev(tt.xs); !almostEqual(got, math.Sqrt(tt.variance), 1e-12) {
				t.Fatalf("StdDev = %v, want %v", got, math.Sqrt(tt.variance))
			}
		})
	}
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "empty", xs: nil, want: 0},
		{name: "odd", xs: []float64{3, 1, 2}, want: 2},
		{name: "even", xs: []float64{4, 1, 3, 2}, want: 2.5},
		{name: "unsorted input preserved", xs: []float64{9, 1, 5}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Median(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Fatalf("Median = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	_ = Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{p: 0, want: 10},
		{p: 50, want: 30},
		{p: 100, want: 50},
		{p: 25, want: 20},
		{p: 90, want: 46},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Fatal("Percentile of empty slice should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("Percentile(101) should fail")
	}
	single, err := Percentile([]float64{42}, 75)
	if err != nil || single != 42 {
		t.Fatalf("Percentile single = %v, %v", single, err)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if r, err := Pearson(x, yPos); err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson positive = %v, %v", r, err)
	}
	if r, err := Pearson(x, yNeg); err != nil || !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson negative = %v, %v", r, err)
	}
}

func TestPearsonConstantSeries(t *testing.T) {
	r, err := Pearson([]float64{1, 1, 1}, []float64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("Pearson with constant series = %v, want 0", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single sample should fail")
	}
}

func TestSpearmanMonotoneInvariance(t *testing.T) {
	// Spearman must be exactly 1 for any strictly increasing transform.
	rng := rand.New(rand.NewSource(4))
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = rng.Float64() * 1000
		y[i] = math.Exp(x[i]/200) + 5 // strictly increasing, non-linear
	}
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-9) {
		t.Fatalf("Spearman of monotone transform = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{10, 20, 20, 30}
	r, err := Spearman(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-9) {
		t.Fatalf("Spearman with ties = %v, want 1", r)
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 40})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		p, err := Pearson(x, y)
		if err != nil {
			return false
		}
		s, err := Spearman(x, y)
		if err != nil {
			return false
		}
		return p >= -1-1e-9 && p <= 1+1e-9 && s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankPredictors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 300; i++ {
		strong := rng.Float64() * 100
		weak := rng.Float64() * 100
		noise := rng.Float64() * 100
		xs = append(xs, []float64{noise, strong, weak})
		ys = append(ys, 3*strong+1.0*weak+rng.NormFloat64())
	}
	for _, method := range []CorrelationMethod{MethodPearson, MethodSpearman} {
		ranking, err := RankPredictors(xs, ys, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if ranking.Columns[0] != 1 {
			t.Fatalf("%v: strongest column = %d, want 1 (scores %v)", method, ranking.Columns[0], ranking.Scores)
		}
		if ranking.Columns[2] != 0 {
			t.Fatalf("%v: weakest column = %d, want 0", method, ranking.Columns[2])
		}
	}
}

func TestRankPredictorsErrors(t *testing.T) {
	if _, err := RankPredictors(nil, nil, MethodPearson); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := RankPredictors([][]float64{{1, 2}, {3}}, []float64{1, 2}, MethodPearson); err == nil {
		t.Fatal("ragged rows should fail")
	}
	if _, err := RankPredictors([][]float64{{1}, {2}}, []float64{1, 2}, CorrelationMethod(99)); err == nil {
		t.Fatal("unknown method should fail")
	}
}

func TestCorrelationMethodString(t *testing.T) {
	if MethodPearson.String() != "pearson" || MethodSpearman.String() != "spearman" {
		t.Fatal("unexpected String() values")
	}
	if CorrelationMethod(42).String() == "" {
		t.Fatal("unknown method should still render")
	}
}
