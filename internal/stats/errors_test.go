package stats

import (
	"strings"
	"testing"
)

func TestCompareSeriesExact(t *testing.T) {
	est := []float64{10, 20, 30}
	ref := []float64{10, 20, 30}
	r, err := CompareSeries(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if r.MedianAPE != 0 || r.MAPE != 0 || r.RMSE != 0 || r.MaxAPE != 0 || r.Bias != 0 {
		t.Fatalf("exact series should report zero errors: %+v", r)
	}
	if r.N != 3 {
		t.Fatalf("N = %d, want 3", r.N)
	}
}

func TestCompareSeriesKnownErrors(t *testing.T) {
	ref := []float64{100, 100, 100, 100}
	est := []float64{110, 90, 100, 120}
	r, err := CompareSeries(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.MedianAPE, 0.10, 1e-9) {
		t.Fatalf("MedianAPE = %v, want 0.10", r.MedianAPE)
	}
	if !almostEqual(r.MAPE, 0.10, 1e-9) {
		t.Fatalf("MAPE = %v, want 0.10", r.MAPE)
	}
	if !almostEqual(r.MaxAPE, 0.20, 1e-9) {
		t.Fatalf("MaxAPE = %v, want 0.20", r.MaxAPE)
	}
	if !almostEqual(r.Bias, 5, 1e-9) {
		t.Fatalf("Bias = %v, want 5", r.Bias)
	}
}

func TestCompareSeriesSkipsZeroReference(t *testing.T) {
	ref := []float64{0, 100}
	est := []float64{5, 110}
	r, err := CompareSeries(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r.MAPE, 0.10, 1e-9) {
		t.Fatalf("MAPE = %v, want 0.10 (zero reference skipped)", r.MAPE)
	}
	if r.RMSE <= 0 {
		t.Fatalf("RMSE should still account for all samples, got %v", r.RMSE)
	}
}

func TestCompareSeriesErrors(t *testing.T) {
	if _, err := CompareSeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := CompareSeries(nil, nil); err == nil {
		t.Fatal("empty series should fail")
	}
}

func TestConvenienceWrappers(t *testing.T) {
	ref := []float64{100, 200}
	est := []float64{110, 180}
	m, err := MAPE(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 0.10, 1e-9) {
		t.Fatalf("MAPE = %v, want 0.10", m)
	}
	md, err := MedianAPE(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(md, 0.10, 1e-9) {
		t.Fatalf("MedianAPE = %v, want 0.10", md)
	}
	rm, err := RMSE(est, ref)
	if err != nil {
		t.Fatal(err)
	}
	if rm <= 0 {
		t.Fatalf("RMSE = %v, want > 0", rm)
	}
	if _, err := MAPE(nil, nil); err == nil {
		t.Fatal("MAPE of empty series should fail")
	}
	if _, err := MedianAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("MedianAPE length mismatch should fail")
	}
	if _, err := RMSE(nil, []float64{}); err == nil {
		t.Fatal("RMSE of empty series should fail")
	}
}

func TestErrorReportString(t *testing.T) {
	r := ErrorReport{MedianAPE: 0.15, MAPE: 0.2, RMSE: 3.5, MaxAPE: 0.4, Bias: -1.2, N: 100}
	s := r.String()
	for _, want := range []string{"median error 15.0%", "mean error 20.0%", "RMSE 3.50 W", "n=100"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}
