package stats

import (
	"errors"
	"fmt"
	"math"
)

// RegressionResult holds the outcome of a multivariate ordinary-least-squares
// fit. With an intercept, the model is
//
//	y ≈ Intercept + Σ_j Coefficients[j]·x_j
type RegressionResult struct {
	// Intercept is the constant term (zero when the fit was forced through
	// the origin).
	Intercept float64
	// Coefficients holds one slope per predictor column, in column order.
	Coefficients []float64
	// R2 is the coefficient of determination of the fit on the training data.
	R2 float64
	// AdjustedR2 penalises R2 for the number of predictors.
	AdjustedR2 float64
	// Residuals are y_i - ŷ_i for each training sample.
	Residuals []float64
	// N is the number of samples used.
	N int
}

// Predict evaluates the fitted model on one observation x (same column order
// as the training design matrix).
func (r *RegressionResult) Predict(x []float64) (float64, error) {
	if len(x) != len(r.Coefficients) {
		return 0, fmt.Errorf("stats: observation has %d predictors, model has %d: %w",
			len(x), len(r.Coefficients), ErrDimensionMismatch)
	}
	y := r.Intercept
	for j, c := range r.Coefficients {
		y += c * x[j]
	}
	return y, nil
}

// OLSOptions controls the behaviour of the least-squares fit.
type OLSOptions struct {
	// FitIntercept adds a constant column to the design matrix. The paper's
	// per-frequency models are fitted without an intercept (the idle power is
	// isolated as a separate constant), while the whole-machine model keeps
	// one; both modes are supported.
	FitIntercept bool
	// Ridge adds an L2 penalty to stabilise nearly collinear predictors.
	// The value is relative: the effective lambda is Ridge times the mean
	// diagonal of XᵀX, so the same Ridge works regardless of predictor
	// scale. Zero disables regularisation.
	Ridge float64
}

// OLS fits a multivariate linear regression of y on the columns of x using
// the normal equations. Each row of x is one observation.
func OLS(x [][]float64, y []float64, opts OLSOptions) (*RegressionResult, error) {
	n := len(x)
	if n == 0 {
		return nil, errors.New("stats: no observations")
	}
	if len(y) != n {
		return nil, fmt.Errorf("stats: %d observations but %d responses: %w", n, len(y), ErrDimensionMismatch)
	}
	p := len(x[0])
	if p == 0 {
		return nil, errors.New("stats: no predictors")
	}
	cols := p
	if opts.FitIntercept {
		cols++
	}
	if n < cols {
		return nil, fmt.Errorf("stats: %d observations is not enough to fit %d parameters", n, cols)
	}

	design := make([][]float64, n)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("stats: observation %d has %d predictors, want %d: %w",
				i, len(row), p, ErrDimensionMismatch)
		}
		d := make([]float64, cols)
		if opts.FitIntercept {
			d[0] = 1
			copy(d[1:], row)
		} else {
			copy(d, row)
		}
		design[i] = d
	}

	xm, err := MatrixFromRows(design)
	if err != nil {
		return nil, err
	}
	xt := xm.Transpose()
	xtx, err := xt.Mul(xm)
	if err != nil {
		return nil, err
	}
	if opts.Ridge > 0 {
		var trace float64
		for j := 0; j < cols; j++ {
			trace += xtx.At(j, j)
		}
		lambda := opts.Ridge * trace / float64(cols)
		if lambda <= 0 {
			lambda = opts.Ridge
		}
		for j := 0; j < cols; j++ {
			if opts.FitIntercept && j == 0 {
				continue // never penalise the intercept
			}
			xtx.Set(j, j, xtx.At(j, j)+lambda)
		}
	}
	xty, err := xt.MulVec(y)
	if err != nil {
		return nil, err
	}
	beta, err := SolveLinearSystem(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("stats: OLS solve: %w", err)
	}

	res := &RegressionResult{N: n}
	if opts.FitIntercept {
		res.Intercept = beta[0]
		res.Coefficients = append([]float64(nil), beta[1:]...)
	} else {
		res.Coefficients = append([]float64(nil), beta...)
	}

	// Residuals and goodness of fit.
	res.Residuals = make([]float64, n)
	meanY := Mean(y)
	var ssRes, ssTot float64
	for i := range x {
		pred, err := res.Predict(x[i])
		if err != nil {
			return nil, err
		}
		r := y[i] - pred
		res.Residuals[i] = r
		ssRes += r * r
		d := y[i] - meanY
		ssTot += d * d
	}
	if ssTot > 0 {
		res.R2 = 1 - ssRes/ssTot
	} else {
		res.R2 = 1
	}
	dof := float64(n - cols)
	if dof > 0 && ssTot > 0 {
		res.AdjustedR2 = 1 - (ssRes/dof)/(ssTot/float64(n-1))
	} else {
		res.AdjustedR2 = res.R2
	}
	if math.IsNaN(res.R2) || math.IsInf(res.R2, 0) {
		res.R2 = 0
	}
	return res, nil
}

// NonNegativeOLS fits an OLS model and clamps negative coefficients to zero,
// then refits the remaining predictors. Power contributions of hardware
// events are physically non-negative, so the calibration pipeline uses this
// variant to keep models interpretable (as the paper's published coefficients
// are all positive).
func NonNegativeOLS(x [][]float64, y []float64, opts OLSOptions) (*RegressionResult, error) {
	res, err := OLS(x, y, opts)
	if err != nil {
		return nil, err
	}
	p := len(res.Coefficients)
	active := make([]bool, p)
	activeCount := 0
	for j, c := range res.Coefficients {
		if c > 0 {
			active[j] = true
			activeCount++
		}
	}
	if activeCount == p {
		return res, nil
	}
	if activeCount == 0 {
		// Degenerate: every predictor came out non-positive. Return a model
		// with all-zero slopes and (optionally) the mean as intercept.
		out := &RegressionResult{
			Coefficients: make([]float64, p),
			N:            res.N,
			Residuals:    make([]float64, len(y)),
		}
		if opts.FitIntercept {
			out.Intercept = Mean(y)
		}
		for i := range y {
			pred, _ := out.Predict(x[i])
			out.Residuals[i] = y[i] - pred
		}
		return out, nil
	}

	// Refit on the surviving predictors only.
	reduced := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, 0, activeCount)
		for j, ok := range active {
			if ok {
				r = append(r, row[j])
			}
		}
		reduced[i] = r
	}
	sub, err := OLS(reduced, y, opts)
	if err != nil {
		return nil, err
	}
	full := &RegressionResult{
		Intercept:    sub.Intercept,
		Coefficients: make([]float64, p),
		R2:           sub.R2,
		AdjustedR2:   sub.AdjustedR2,
		Residuals:    sub.Residuals,
		N:            sub.N,
	}
	idx := 0
	for j, ok := range active {
		if ok {
			c := sub.Coefficients[idx]
			if c < 0 {
				c = 0
			}
			full.Coefficients[j] = c
			idx++
		}
	}
	return full, nil
}
