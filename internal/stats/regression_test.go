package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestOLSRecoversKnownCoefficients(t *testing.T) {
	// y = 3 + 2*x1 + 0.5*x2, exactly.
	rng := rand.New(rand.NewSource(1))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x1 := rng.Float64() * 100
		x2 := rng.Float64() * 10
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 3+2*x1+0.5*x2)
	}
	res, err := OLS(xs, ys, OLSOptions{FitIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Intercept, 3, 1e-6) {
		t.Fatalf("intercept = %v, want 3", res.Intercept)
	}
	if !almostEqual(res.Coefficients[0], 2, 1e-6) || !almostEqual(res.Coefficients[1], 0.5, 1e-6) {
		t.Fatalf("coefficients = %v, want [2 0.5]", res.Coefficients)
	}
	if res.R2 < 0.999999 {
		t.Fatalf("R2 = %v, want ~1", res.R2)
	}
}

func TestOLSWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 2000; i++ {
		x1 := rng.Float64() * 50
		xs = append(xs, []float64{x1})
		ys = append(ys, 10+1.5*x1+rng.NormFloat64()*0.5)
	}
	res, err := OLS(xs, ys, OLSOptions{FitIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(res.Intercept, 10, 0.2) {
		t.Fatalf("intercept = %v, want ~10", res.Intercept)
	}
	if !almostEqual(res.Coefficients[0], 1.5, 0.05) {
		t.Fatalf("slope = %v, want ~1.5", res.Coefficients[0])
	}
	if res.R2 < 0.99 {
		t.Fatalf("R2 = %v, want > 0.99", res.R2)
	}
}

func TestOLSNoIntercept(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{2, 4, 6, 8}
	res, err := OLS(xs, ys, OLSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intercept != 0 {
		t.Fatalf("intercept = %v, want 0", res.Intercept)
	}
	if !almostEqual(res.Coefficients[0], 2, 1e-9) {
		t.Fatalf("slope = %v, want 2", res.Coefficients[0])
	}
}

func TestOLSInputValidation(t *testing.T) {
	tests := []struct {
		name string
		x    [][]float64
		y    []float64
	}{
		{name: "no observations", x: nil, y: nil},
		{name: "mismatched y", x: [][]float64{{1}}, y: []float64{1, 2}},
		{name: "no predictors", x: [][]float64{{}}, y: []float64{1}},
		{name: "ragged rows", x: [][]float64{{1, 2}, {3}}, y: []float64{1, 2}},
		{name: "more params than samples", x: [][]float64{{1, 2, 3}}, y: []float64{1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := OLS(tt.x, tt.y, OLSOptions{FitIntercept: true}); err == nil {
				t.Fatal("expected error, got nil")
			}
		})
	}
}

func TestOLSCollinearPredictors(t *testing.T) {
	// Perfectly collinear columns: singular normal equations.
	var xs [][]float64
	var ys []float64
	for i := 1; i <= 20; i++ {
		v := float64(i)
		xs = append(xs, []float64{v, 2 * v})
		ys = append(ys, 3*v)
	}
	if _, err := OLS(xs, ys, OLSOptions{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
	// Ridge regularisation makes it solvable.
	res, err := OLS(xs, ys, OLSOptions{Ridge: 1e-6})
	if err != nil {
		t.Fatalf("ridge OLS: %v", err)
	}
	pred, err := res.Predict([]float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(pred, 30, 0.1) {
		t.Fatalf("ridge prediction = %v, want ~30", pred)
	}
}

func TestPredictDimensionCheck(t *testing.T) {
	res := &RegressionResult{Intercept: 1, Coefficients: []float64{2, 3}}
	if _, err := res.Predict([]float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("expected ErrDimensionMismatch, got %v", err)
	}
	got, err := res.Predict([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Fatalf("Predict = %v, want 6", got)
	}
}

func TestNonNegativeOLSClampsNegative(t *testing.T) {
	// x2 is pure noise negatively correlated by construction; the true model
	// only involves x1.
	rng := rand.New(rand.NewSource(3))
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x1 := rng.Float64() * 100
		x2 := -x1 + rng.NormFloat64()*0.01 // strongly negative contribution if fitted freely
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, 5+1.2*x1)
	}
	res, err := NonNegativeOLS(xs, ys, OLSOptions{FitIntercept: true, Ridge: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range res.Coefficients {
		if c < 0 {
			t.Fatalf("coefficient %d is negative: %v", j, c)
		}
	}
}

func TestNonNegativeOLSAllNegative(t *testing.T) {
	// y decreases with x: the only admissible non-negative model is flat.
	xs := [][]float64{{1}, {2}, {3}, {4}, {5}}
	ys := []float64{10, 8, 6, 4, 2}
	res, err := NonNegativeOLS(xs, ys, OLSOptions{FitIntercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coefficients[0] != 0 {
		t.Fatalf("coefficient = %v, want 0", res.Coefficients[0])
	}
	if !almostEqual(res.Intercept, Mean(ys), 1e-9) {
		t.Fatalf("intercept = %v, want mean %v", res.Intercept, Mean(ys))
	}
}

func TestOLSPropertyPredictionsMatchResiduals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		var xs [][]float64
		var ys []float64
		for i := 0; i < n; i++ {
			x1 := rng.Float64() * 10
			x2 := rng.Float64() * 5
			xs = append(xs, []float64{x1, x2})
			ys = append(ys, 1+2*x1-x2+rng.NormFloat64())
		}
		res, err := OLS(xs, ys, OLSOptions{FitIntercept: true})
		if err != nil {
			return false
		}
		// Residuals must equal y - prediction for every sample.
		for i := range xs {
			pred, err := res.Predict(xs[i])
			if err != nil {
				return false
			}
			if !almostEqual(res.Residuals[i], ys[i]-pred, 1e-9) {
				return false
			}
		}
		// OLS residuals with an intercept must sum to ~0.
		var sum float64
		for _, r := range res.Residuals {
			sum += r
		}
		return almostEqual(sum/float64(n), 0, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
