package powermeter

import (
	"errors"
	"math"
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

func newMachine(t *testing.T, spec cpu.Spec) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Spec = spec
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewPowerSpyValidation(t *testing.T) {
	if _, err := NewPowerSpy(nil, DefaultPowerSpyConfig()); err == nil {
		t.Fatal("nil machine should fail")
	}
	m := newMachine(t, cpu.IntelCorei3_2120())
	bad := DefaultPowerSpyConfig()
	bad.NoiseStdDevWatts = -1
	if _, err := NewPowerSpy(m, bad); err == nil {
		t.Fatal("negative noise should fail")
	}
}

func TestPowerSpyTracksTruePower(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	cfg := DefaultPowerSpyConfig()
	cfg.NoiseStdDevWatts = 0
	cfg.QuantizationWatts = 0
	spy, err := NewPowerSpy(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	s := spy.Sample()
	if math.Abs(s.Watts-m.TruePowerWatts()) > 1e-9 {
		t.Fatalf("noise-free sample %.3f does not match true power %.3f", s.Watts, m.TruePowerWatts())
	}
	if s.Time != m.Now() {
		t.Fatalf("sample time %v, want %v", s.Time, m.Now())
	}
}

func TestPowerSpyQuantization(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	cfg := PowerSpyConfig{NoiseStdDevWatts: 0, QuantizationWatts: 0.5, Seed: 1}
	spy, err := NewPowerSpy(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = m.Run(500 * time.Millisecond)
	s := spy.Sample()
	remainder := math.Mod(s.Watts, 0.5)
	if remainder > 1e-9 && math.Abs(remainder-0.5) > 1e-9 {
		t.Fatalf("sample %.4f not quantised to 0.5 W", s.Watts)
	}
}

func TestPowerSpyNoiseIsBounded(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	cfg := PowerSpyConfig{NoiseStdDevWatts: 0.25, QuantizationWatts: 0.1, Seed: 3}
	spy, _ := NewPowerSpy(m, cfg)
	_, _ = m.Run(time.Second)
	truth := m.TruePowerWatts()
	var maxDiff float64
	for i := 0; i < 500; i++ {
		s := spy.Sample()
		if d := math.Abs(s.Watts - truth); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 2.0 {
		t.Fatalf("noise excursion %.2f W too large for 0.25 W stddev", maxDiff)
	}
	if maxDiff == 0 {
		t.Fatal("noise never perturbed the reading")
	}
}

func TestPowerSpyHistoryAndReset(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	spy, _ := NewPowerSpy(m, DefaultPowerSpyConfig())
	for i := 0; i < 5; i++ {
		_, _ = m.Run(100 * time.Millisecond)
		spy.Sample()
	}
	h := spy.History()
	if len(h) != 5 {
		t.Fatalf("history has %d samples, want 5", len(h))
	}
	for i := 1; i < len(h); i++ {
		if h[i].Time <= h[i-1].Time {
			t.Fatal("history timestamps not increasing")
		}
	}
	// History must be a copy.
	h[0].Watts = -1
	if spy.History()[0].Watts == -1 {
		t.Fatal("History leaked internal slice")
	}
	spy.Reset()
	if len(spy.History()) != 0 {
		t.Fatal("Reset did not clear the history")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{
		{Time: 0, Watts: 10},
		{Time: time.Second, Watts: 20},
		{Time: 2 * time.Second, Watts: 30},
	}
	w := s.Watts()
	if len(w) != 3 || w[1] != 20 {
		t.Fatalf("Watts() = %v", w)
	}
	ts := s.Times()
	if len(ts) != 3 || ts[2] != 2*time.Second {
		t.Fatalf("Times() = %v", ts)
	}
	if got := s.MeanWatts(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("MeanWatts = %v, want 20", got)
	}
	if got := s.EnergyJoules(time.Second); math.Abs(got-60) > 1e-9 {
		t.Fatalf("EnergyJoules = %v, want 60", got)
	}
	if (Series{}).MeanWatts() != 0 {
		t.Fatal("empty series mean should be 0")
	}
}

func TestRAPLRequiresSupport(t *testing.T) {
	if _, err := NewRAPL(nil); err == nil {
		t.Fatal("nil machine should fail")
	}
	m := newMachine(t, cpu.IntelCore2DuoE6600())
	if _, err := NewRAPL(m); !errors.Is(err, ErrRAPLUnsupported) {
		t.Fatalf("expected ErrRAPLUnsupported, got %v", err)
	}
}

func TestRAPLPowerReading(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	rapl, err := NewRAPL(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rapl.PowerWatts(); err == nil {
		t.Fatal("reading with no elapsed time should fail")
	}
	gen, _ := workload.CPUStress(1.0, 0)
	if _, err := m.Spawn(gen); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	watts, err := rapl.PowerWatts()
	if err != nil {
		t.Fatal(err)
	}
	if watts <= 0 {
		t.Fatalf("RAPL power = %v, want > 0", watts)
	}
	// RAPL reports CPU-package power only: strictly below wall power.
	if watts >= m.TruePowerWatts() {
		t.Fatalf("RAPL package power %.2f should be below wall power %.2f", watts, m.TruePowerWatts())
	}
	if rapl.EnergyJoules() <= 0 {
		t.Fatal("RAPL energy counter should be positive")
	}
}

func TestRAPLEnergyMonotonic(t *testing.T) {
	m := newMachine(t, cpu.IntelCorei3_2120())
	rapl, _ := NewRAPL(m)
	var last float64
	for i := 0; i < 20; i++ {
		_, _ = m.Run(100 * time.Millisecond)
		e := rapl.EnergyJoules()
		if e < last {
			t.Fatalf("RAPL energy went backwards: %v -> %v", last, e)
		}
		last = e
	}
}
