// Package powermeter simulates the two power-measurement channels the paper
// discusses:
//
//   - PowerSpy, the Bluetooth wall-socket power meter used as ground truth
//     during calibration and in the Figure 3 evaluation. The simulated meter
//     samples the machine's hidden true wall power, adding measurement noise
//     and quantisation, so the learning pipeline never sees an exact value.
//   - RAPL (Running Average Power Limit), Intel's MSR-based package energy
//     counter. The paper criticises it for being architecture dependent and
//     package-scoped only; the simulation reproduces both limitations (it
//     refuses to attach to non-RAPL specs and only reports CPU-package
//     energy, never per-process figures).
package powermeter

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"powerapi/internal/machine"
	"powerapi/internal/simclock"
)

// Sample is one power observation.
type Sample struct {
	// Time is the simulated instant of the observation.
	Time time.Duration `json:"time"`
	// Watts is the observed power.
	Watts float64 `json:"watts"`
}

// Series is an ordered collection of samples.
type Series []Sample

// Watts projects the series onto a plain power vector.
func (s Series) Watts() []float64 {
	out := make([]float64, len(s))
	for i, sample := range s {
		out[i] = sample.Watts
	}
	return out
}

// Times projects the series onto its timestamps.
func (s Series) Times() []time.Duration {
	out := make([]time.Duration, len(s))
	for i, sample := range s {
		out[i] = sample.Time
	}
	return out
}

// MeanWatts returns the average power of the series.
func (s Series) MeanWatts() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, sample := range s {
		sum += sample.Watts
	}
	return sum / float64(len(s))
}

// EnergyJoules integrates the series assuming the given sampling interval.
func (s Series) EnergyJoules(interval time.Duration) float64 {
	var sum float64
	for _, sample := range s {
		sum += sample.Watts * interval.Seconds()
	}
	return sum
}

// PowerSpyConfig tunes the simulated wall-power meter.
type PowerSpyConfig struct {
	// NoiseStdDevWatts is the meter's own measurement noise.
	NoiseStdDevWatts float64
	// QuantizationWatts rounds readings to this granularity (PowerSpy
	// reports ~0.1 W resolution).
	QuantizationWatts float64
	// Seed drives the meter's private noise stream.
	Seed int64
}

// DefaultPowerSpyConfig mirrors the characteristics of the physical device.
func DefaultPowerSpyConfig() PowerSpyConfig {
	return PowerSpyConfig{
		NoiseStdDevWatts:  0.25,
		QuantizationWatts: 0.1,
		Seed:              1234,
	}
}

// PowerSpy is the simulated Bluetooth power meter.
type PowerSpy struct {
	cfg PowerSpyConfig
	m   *machine.Machine
	rng *simclock.Source

	mu     sync.Mutex
	series Series
}

// NewPowerSpy attaches a power meter to a machine.
func NewPowerSpy(m *machine.Machine, cfg PowerSpyConfig) (*PowerSpy, error) {
	if m == nil {
		return nil, errors.New("powermeter: nil machine")
	}
	if cfg.NoiseStdDevWatts < 0 || cfg.QuantizationWatts < 0 {
		return nil, errors.New("powermeter: negative noise or quantisation")
	}
	return &PowerSpy{cfg: cfg, m: m, rng: simclock.NewSource(cfg.Seed)}, nil
}

// Sample reads the wall power now, records it in the meter's history and
// returns it.
func (p *PowerSpy) Sample() Sample {
	watts := p.m.TruePowerWatts() + p.rng.Gaussian(0, p.cfg.NoiseStdDevWatts)
	if watts < 0 {
		watts = 0
	}
	if q := p.cfg.QuantizationWatts; q > 0 {
		watts = float64(int64(watts/q+0.5)) * q
	}
	s := Sample{Time: p.m.Now(), Watts: watts}
	p.mu.Lock()
	p.series = append(p.series, s)
	p.mu.Unlock()
	return s
}

// History returns a copy of every sample taken so far.
func (p *PowerSpy) History() Series {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append(Series(nil), p.series...)
}

// Reset clears the sample history.
func (p *PowerSpy) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.series = nil
}

// ErrRAPLUnsupported is returned when attaching a RAPL reader to a processor
// generation without RAPL MSRs — reproducing the architecture dependence the
// paper criticises.
var ErrRAPLUnsupported = errors.New("powermeter: processor does not expose RAPL")

// RAPL reads the CPU-package energy counter of RAPL-capable processors.
type RAPL struct {
	m *machine.Machine

	mu         sync.Mutex
	lastEnergy float64
	lastTime   time.Duration
}

// NewRAPL attaches a RAPL package-domain reader to a machine.
func NewRAPL(m *machine.Machine) (*RAPL, error) {
	if m == nil {
		return nil, errors.New("powermeter: nil machine")
	}
	if !m.Spec().HasRAPL {
		return nil, fmt.Errorf("%w: %s", ErrRAPLUnsupported, m.Spec().String())
	}
	return &RAPL{m: m, lastEnergy: m.CPUEnergyJoules(), lastTime: m.Now()}, nil
}

// EnergyJoules returns the cumulative package energy counter.
func (r *RAPL) EnergyJoules() float64 {
	return r.m.CPUEnergyJoules()
}

// PowerWatts returns the average package power since the previous call (or
// since attach for the first call). It mirrors how RAPL consumers derive
// power from two energy readings.
func (r *RAPL) PowerWatts() (float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nowEnergy := r.m.CPUEnergyJoules()
	now := r.m.Now()
	elapsed := now - r.lastTime
	if elapsed <= 0 {
		return 0, errors.New("powermeter: no simulated time elapsed since previous RAPL reading")
	}
	watts := (nowEnergy - r.lastEnergy) / elapsed.Seconds()
	r.lastEnergy = nowEnergy
	r.lastTime = now
	return watts, nil
}
