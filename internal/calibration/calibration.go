// Package calibration implements the power-model learning process of the
// paper's Figure 1:
//
//  1. CPU- and memory-intensive workloads are executed at several utilisation
//     levels, for every frequency made available by the processor (pinned
//     through the userspace cpufreq governor);
//  2. hardware performance counters and PowerSpy wall-power measurements are
//     gathered simultaneously;
//  3. the counters most correlated with power are selected (Pearson by
//     default, Spearman as the paper's planned improvement, or a fixed list
//     such as the paper's instructions / cache-references / cache-misses);
//  4. one multivariate regression per frequency produces the energy profile
//     (a model.CPUPowerModel).
package calibration

import (
	"errors"
	"fmt"
	"time"

	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/powermeter"
	"powerapi/internal/stats"
	"powerapi/internal/workload"
)

// workloadKind identifies one calibration workload family.
type workloadKind struct {
	name string
	make func(level float64) (workload.Generator, error)
}

// Options tunes the calibration sweep.
type Options struct {
	// Levels are the utilisation levels each stress workload is run at.
	Levels []float64
	// StepDuration is the measured window per (workload, level) combination.
	StepDuration time.Duration
	// SettleDuration is discarded at the start of each combination (governor
	// and scheduler transients).
	SettleDuration time.Duration
	// SampleInterval is the counter/power sampling period.
	SampleInterval time.Duration
	// Repetitions repeats the whole sweep to improve the regression, as the
	// paper does ("the workloads are executed several times").
	Repetitions int
	// CandidateEvents are the counters considered during selection
	// (defaults to every generic event).
	CandidateEvents []hpc.Event
	// SelectionMethod ranks candidates by correlation with power.
	SelectionMethod stats.CorrelationMethod
	// TopK is the number of counters kept after ranking.
	TopK int
	// FixedEvents bypasses selection entirely and uses the given events (the
	// paper's final choice is hpc.PaperEvents()).
	FixedEvents []hpc.Event
	// PowerSpy configures the simulated power meter used as ground truth.
	PowerSpy powermeter.PowerSpyConfig
	// Seed varies the stochastic components of the calibration machines.
	Seed int64
}

// DefaultOptions returns a faithful (but still fast) sweep configuration.
func DefaultOptions() Options {
	return Options{
		Levels:          []float64{0.25, 0.5, 0.75, 1.0},
		StepDuration:    4 * time.Second,
		SettleDuration:  1 * time.Second,
		SampleInterval:  250 * time.Millisecond,
		Repetitions:     2,
		CandidateEvents: hpc.GenericEvents(),
		SelectionMethod: stats.MethodPearson,
		TopK:            3,
		PowerSpy:        powermeter.DefaultPowerSpyConfig(),
		Seed:            101,
	}
}

// QuickOptions returns a reduced sweep suitable for tests and demos.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Levels = []float64{0.5, 1.0}
	o.StepDuration = 1500 * time.Millisecond
	o.SettleDuration = 300 * time.Millisecond
	o.SampleInterval = 250 * time.Millisecond
	o.Repetitions = 1
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	switch {
	case len(o.Levels) == 0:
		return errors.New("calibration: no utilisation levels")
	case o.StepDuration <= 0:
		return errors.New("calibration: step duration must be positive")
	case o.SettleDuration < 0:
		return errors.New("calibration: settle duration must be non-negative")
	case o.SampleInterval <= 0:
		return errors.New("calibration: sample interval must be positive")
	case o.SampleInterval > o.StepDuration:
		return errors.New("calibration: sample interval exceeds step duration")
	case o.Repetitions <= 0:
		return errors.New("calibration: repetitions must be positive")
	case o.TopK <= 0 && len(o.FixedEvents) == 0:
		return errors.New("calibration: TopK must be positive when no fixed events are given")
	}
	for _, l := range o.Levels {
		if l <= 0 || l > 1 {
			return fmt.Errorf("calibration: level %v out of (0,1]", l)
		}
	}
	for _, e := range o.FixedEvents {
		if !e.Valid() {
			return fmt.Errorf("calibration: invalid fixed event %v", e)
		}
	}
	return nil
}

// Sample is one calibration observation: counter rates and measured power
// under a known workload, frequency and utilisation level.
type Sample struct {
	FrequencyMHz int                   `json:"frequencyMHz"`
	Workload     string                `json:"workload"`
	Level        float64               `json:"level"`
	Watts        float64               `json:"watts"`
	ActiveWatts  float64               `json:"activeWatts"`
	Rates        map[hpc.Event]float64 `json:"-"`
}

// FrequencyFit summarises the regression quality at one frequency.
type FrequencyFit struct {
	FrequencyMHz int     `json:"frequencyMHz"`
	R2           float64 `json:"r2"`
	Samples      int     `json:"samples"`
}

// Report describes a completed calibration.
type Report struct {
	IdleWatts        float64            `json:"idleWatts"`
	SelectedEvents   []hpc.Event        `json:"-"`
	SelectedNames    []string           `json:"selectedEvents"`
	SelectionMethod  string             `json:"selectionMethod"`
	CandidateScores  map[string]float64 `json:"candidateScores"`
	PerFrequency     []FrequencyFit     `json:"perFrequency"`
	TotalSamples     int                `json:"totalSamples"`
	SimulatedSeconds float64            `json:"simulatedSeconds"`
	Samples          []Sample           `json:"-"`
}

// Calibrator runs the Figure 1 learning process against simulated machines
// built from a template configuration.
type Calibrator struct {
	template machine.Config
	opts     Options
}

// New creates a calibrator. The template machine configuration selects the
// processor to profile; the calibrator overrides its governor (the sweep pins
// frequencies) but keeps everything else.
func New(template machine.Config, opts Options) (*Calibrator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if template.Spec.Model == "" {
		template = machine.DefaultConfig()
	}
	if err := template.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("calibration: %w", err)
	}
	return &Calibrator{template: template, opts: opts}, nil
}

func (c *Calibrator) workloadKinds() []workloadKind {
	return []workloadKind{
		{name: "cpu-stress", make: func(level float64) (workload.Generator, error) {
			return workload.CPUStress(level, 0)
		}},
		{name: "mem-stress", make: func(level float64) (workload.Generator, error) {
			return workload.MemoryStress(level, 0)
		}},
		{name: "mixed-stress", make: func(level float64) (workload.Generator, error) {
			return workload.MixedStress(0.5, level, 0)
		}},
	}
}

func (c *Calibrator) newMachine(seedOffset int64) (*machine.Machine, *powermeter.PowerSpy, error) {
	cfg := c.template
	cfg.Seed = c.opts.Seed + seedOffset
	m, err := machine.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	spyCfg := c.opts.PowerSpy
	spyCfg.Seed = c.opts.Seed + seedOffset + 7919
	spy, err := powermeter.NewPowerSpy(m, spyCfg)
	if err != nil {
		return nil, nil, err
	}
	return m, spy, nil
}

// measureIdle isolates the idle power constant of the machine, the "31.48"
// of the paper's formula.
func (c *Calibrator) measureIdle() (float64, float64, error) {
	m, spy, err := c.newMachine(1)
	if err != nil {
		return 0, 0, err
	}
	if _, err := m.Run(c.opts.SettleDuration + time.Second); err != nil {
		return 0, 0, err
	}
	steps := int(c.opts.StepDuration / c.opts.SampleInterval)
	if steps < 4 {
		steps = 4
	}
	for i := 0; i < steps; i++ {
		if _, err := m.Run(c.opts.SampleInterval); err != nil {
			return 0, 0, err
		}
		spy.Sample()
	}
	return spy.History().MeanWatts(), m.Now().Seconds(), nil
}

// collectSamples runs the stress sweep at one pinned frequency and returns
// the gathered observations.
func (c *Calibrator) collectSamples(freqMHz int, rep int, idleWatts float64, events []hpc.Event) ([]Sample, float64, error) {
	m, spy, err := c.newMachine(int64(freqMHz) + int64(rep)*13)
	if err != nil {
		return nil, 0, err
	}
	if err := m.PinAllFrequencies(freqMHz); err != nil {
		return nil, 0, err
	}
	var out []Sample
	for _, kind := range c.workloadKinds() {
		for _, level := range c.opts.Levels {
			// One worker per logical CPU so the sweep exercises SMT and all
			// cores, as the real stress utility does.
			pids := make([]int, 0, m.Topology().NumLogical())
			for i := 0; i < m.Topology().NumLogical(); i++ {
				gen, err := kind.make(level)
				if err != nil {
					return nil, 0, err
				}
				p, err := m.Spawn(gen)
				if err != nil {
					return nil, 0, err
				}
				pids = append(pids, p.PID())
			}
			if _, err := m.Run(c.opts.SettleDuration); err != nil {
				return nil, 0, err
			}
			set, err := hpc.OpenCounterSet(m.Registry(), events, hpc.AllPIDs, hpc.AllCPUs)
			if err != nil {
				return nil, 0, err
			}
			if err := set.Enable(); err != nil {
				return nil, 0, err
			}
			steps := int(c.opts.StepDuration / c.opts.SampleInterval)
			for s := 0; s < steps; s++ {
				if _, err := m.Run(c.opts.SampleInterval); err != nil {
					return nil, 0, err
				}
				deltas, err := set.ReadDelta()
				if err != nil {
					return nil, 0, err
				}
				watts := spy.Sample().Watts
				rates := make(map[hpc.Event]float64, len(events))
				for _, e := range events {
					rates[e] = float64(deltas.Get(e)) / c.opts.SampleInterval.Seconds()
				}
				out = append(out, Sample{
					FrequencyMHz: freqMHz,
					Workload:     kind.name,
					Level:        level,
					Watts:        watts,
					ActiveWatts:  watts - idleWatts,
					Rates:        rates,
				})
			}
			if err := set.Close(); err != nil {
				return nil, 0, err
			}
			for _, pid := range pids {
				if err := m.Kill(pid); err != nil {
					return nil, 0, err
				}
			}
			// Let the machine drain back to idle between combinations.
			if _, err := m.Run(c.opts.SettleDuration / 2); err != nil {
				return nil, 0, err
			}
		}
	}
	return out, m.Now().Seconds(), nil
}

// selectEvents chooses the counters used by the final model.
func (c *Calibrator) selectEvents(samples []Sample, candidates []hpc.Event) ([]hpc.Event, map[string]float64, error) {
	scores := make(map[string]float64, len(candidates))
	if len(c.opts.FixedEvents) > 0 {
		return append([]hpc.Event(nil), c.opts.FixedEvents...), scores, nil
	}
	x := make([][]float64, 0, len(samples))
	y := make([]float64, 0, len(samples))
	for _, s := range samples {
		row := make([]float64, len(candidates))
		for j, e := range candidates {
			row[j] = s.Rates[e]
		}
		x = append(x, row)
		y = append(y, s.ActiveWatts)
	}
	ranking, err := stats.RankPredictors(x, y, c.opts.SelectionMethod)
	if err != nil {
		return nil, nil, fmt.Errorf("calibration: rank counters: %w", err)
	}
	for i, col := range ranking.Columns {
		scores[candidates[col].String()] = ranking.Scores[i]
	}
	k := c.opts.TopK
	if k > len(ranking.Columns) {
		k = len(ranking.Columns)
	}
	selected := make([]hpc.Event, 0, k)
	for _, col := range ranking.Columns[:k] {
		selected = append(selected, candidates[col])
	}
	return selected, scores, nil
}

// Run executes the full learning process and returns the learned power model
// together with a calibration report.
func (c *Calibrator) Run() (*model.CPUPowerModel, *Report, error) {
	candidates := c.opts.CandidateEvents
	if len(candidates) == 0 {
		candidates = hpc.GenericEvents()
	}

	idleWatts, idleSimSeconds, err := c.measureIdle()
	if err != nil {
		return nil, nil, fmt.Errorf("calibration: measure idle: %w", err)
	}

	spec := c.template.Spec
	if spec.Model == "" {
		spec = machine.DefaultConfig().Spec
	}
	frequencies := spec.FrequenciesMHz()

	var (
		allSamples []Sample
		simSeconds = idleSimSeconds
	)
	for _, freq := range frequencies {
		for rep := 0; rep < c.opts.Repetitions; rep++ {
			samples, secs, err := c.collectSamples(freq, rep, idleWatts, candidates)
			if err != nil {
				return nil, nil, fmt.Errorf("calibration: frequency %d MHz repetition %d: %w", freq, rep, err)
			}
			allSamples = append(allSamples, samples...)
			simSeconds += secs
		}
	}
	if len(allSamples) == 0 {
		return nil, nil, errors.New("calibration: sweep produced no samples")
	}

	selected, scores, err := c.selectEvents(allSamples, candidates)
	if err != nil {
		return nil, nil, err
	}

	powerModel := &model.CPUPowerModel{
		SpecName:            spec.String(),
		IdleWatts:           idleWatts,
		SelectionMethod:     c.selectionLabel(),
		TrainedAtSimSeconds: simSeconds,
	}
	report := &Report{
		IdleWatts:        idleWatts,
		SelectedEvents:   selected,
		SelectionMethod:  c.selectionLabel(),
		CandidateScores:  scores,
		TotalSamples:     len(allSamples),
		SimulatedSeconds: simSeconds,
		Samples:          allSamples,
	}
	for _, e := range selected {
		report.SelectedNames = append(report.SelectedNames, e.String())
	}

	for _, freq := range frequencies {
		var x [][]float64
		var y []float64
		for _, s := range allSamples {
			if s.FrequencyMHz != freq {
				continue
			}
			row := make([]float64, len(selected))
			for j, e := range selected {
				row[j] = s.Rates[e]
			}
			x = append(x, row)
			y = append(y, s.ActiveWatts)
		}
		if len(x) <= len(selected) {
			continue
		}
		fit, err := stats.NonNegativeOLS(x, y, stats.OLSOptions{FitIntercept: false, Ridge: 1e-6})
		if err != nil {
			return nil, nil, fmt.Errorf("calibration: fit %d MHz: %w", freq, err)
		}
		fm := model.FrequencyModel{FrequencyMHz: freq, R2: fit.R2, Samples: len(x)}
		for j, e := range selected {
			fm.Terms = append(fm.Terms, model.Term{
				Event:                  e.String(),
				WattsPerEventPerSecond: fit.Coefficients[j],
			})
		}
		powerModel.AddFrequencyModel(fm)
		report.PerFrequency = append(report.PerFrequency, FrequencyFit{
			FrequencyMHz: freq,
			R2:           fit.R2,
			Samples:      len(x),
		})
	}
	if err := powerModel.Validate(); err != nil {
		return nil, nil, fmt.Errorf("calibration: produced invalid model: %w", err)
	}
	return powerModel, report, nil
}

func (c *Calibrator) selectionLabel() string {
	if len(c.opts.FixedEvents) > 0 {
		return "fixed"
	}
	return c.opts.SelectionMethod.String()
}
