package calibration

import (
	"testing"
	"time"

	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/stats"
)

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatalf("default options invalid: %v", err)
	}
	if err := QuickOptions().Validate(); err != nil {
		t.Fatalf("quick options invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Options)
	}{
		{name: "no levels", mutate: func(o *Options) { o.Levels = nil }},
		{name: "level above 1", mutate: func(o *Options) { o.Levels = []float64{1.5} }},
		{name: "zero level", mutate: func(o *Options) { o.Levels = []float64{0} }},
		{name: "zero step", mutate: func(o *Options) { o.StepDuration = 0 }},
		{name: "negative settle", mutate: func(o *Options) { o.SettleDuration = -time.Second }},
		{name: "zero sample interval", mutate: func(o *Options) { o.SampleInterval = 0 }},
		{name: "interval above step", mutate: func(o *Options) { o.SampleInterval = o.StepDuration * 2 }},
		{name: "zero repetitions", mutate: func(o *Options) { o.Repetitions = 0 }},
		{name: "zero topk without fixed", mutate: func(o *Options) { o.TopK = 0 }},
		{name: "invalid fixed event", mutate: func(o *Options) { o.FixedEvents = []hpc.Event{hpc.Event(99)} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			o := DefaultOptions()
			tt.mutate(&o)
			if err := o.Validate(); err == nil {
				t.Fatal("expected validation error")
			}
			if _, err := New(machine.DefaultConfig(), o); err == nil {
				t.Fatal("New should reject invalid options")
			}
		})
	}
}

func TestNewRejectsInvalidSpec(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Spec.TDPWatts = -1
	if _, err := New(cfg, QuickOptions()); err == nil {
		t.Fatal("invalid spec should be rejected")
	}
}

// quickCalibrationSpec narrows the i3 DVFS ladder so the sweep stays fast in
// unit tests while keeping multiple frequencies.
func quickCalibrationSpec() cpu.Spec {
	spec := cpu.IntelCorei3_2120()
	spec.MinFrequencyMHz = 2100
	spec.FrequencyStepMHz = 600 // ladder: 2100, 2700, 3300
	return spec
}

func TestCalibrationProducesPerFrequencyModels(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Spec = quickCalibrationSpec()
	cal, err := New(cfg, QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	powerModel, report, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := powerModel.Validate(); err != nil {
		t.Fatalf("calibrated model invalid: %v", err)
	}
	ladder := quickCalibrationSpec().FrequenciesMHz()
	if len(powerModel.Frequencies) != len(ladder) {
		t.Fatalf("model has %d frequency formulas, want %d", len(powerModel.Frequencies), len(ladder))
	}
	// The idle constant must land near the platform idle the machine
	// simulator produces (~31.5 W for the i3-2120 testbed).
	if report.IdleWatts < 28 || report.IdleWatts > 36 {
		t.Fatalf("idle watts = %.2f, want ~31.5", report.IdleWatts)
	}
	if report.TotalSamples == 0 {
		t.Fatal("report has no samples")
	}
	if len(report.PerFrequency) != len(ladder) {
		t.Fatalf("report covers %d frequencies, want %d", len(report.PerFrequency), len(ladder))
	}
	for _, fit := range report.PerFrequency {
		if fit.R2 < 0.80 {
			t.Fatalf("frequency %d fit R2 = %.3f, want >= 0.80", fit.FrequencyMHz, fit.R2)
		}
		if fit.Samples == 0 {
			t.Fatalf("frequency %d has no samples", fit.FrequencyMHz)
		}
	}
}

func TestCalibrationSelectsCacheAndInstructionCounters(t *testing.T) {
	opts := QuickOptions()
	opts.TopK = 3
	cfg := machine.DefaultConfig()
	cfg.Spec = quickCalibrationSpec()
	cal, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.SelectedEvents) != 3 {
		t.Fatalf("selected %d events, want 3", len(report.SelectedEvents))
	}
	// The selected set must include at least one of the paper's trio; with
	// the simulated ground truth instructions or cache activity always
	// dominates.
	paper := map[hpc.Event]bool{
		hpc.Instructions:    true,
		hpc.CacheReferences: true,
		hpc.CacheMisses:     true,
	}
	found := false
	for _, e := range report.SelectedEvents {
		if paper[e] {
			found = true
		}
	}
	if !found {
		t.Fatalf("selection %v contains none of the paper's counters", report.SelectedNames)
	}
	if len(report.CandidateScores) == 0 {
		t.Fatal("report has no candidate scores")
	}
}

func TestCalibrationWithFixedPaperEvents(t *testing.T) {
	opts := QuickOptions()
	opts.FixedEvents = hpc.PaperEvents()
	cfg := machine.DefaultConfig()
	cfg.Spec = quickCalibrationSpec()
	cal, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	powerModel, report, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.SelectionMethod != "fixed" {
		t.Fatalf("selection method = %q, want fixed", report.SelectionMethod)
	}
	for _, fm := range powerModel.Frequencies {
		if len(fm.Terms) != 3 {
			t.Fatalf("frequency %d has %d terms, want 3", fm.FrequencyMHz, len(fm.Terms))
		}
		for _, term := range fm.Terms {
			if term.WattsPerEventPerSecond < 0 {
				t.Fatalf("negative coefficient for %s at %d MHz", term.Event, fm.FrequencyMHz)
			}
		}
	}
	// Coefficients at the top frequency should be within an order of
	// magnitude of the paper's published values (the hidden ground truth is
	// anchored on them).
	top, err := powerModel.ModelForFrequency(3300)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range top.Terms {
		if term.Event == hpc.Instructions.String() {
			if term.WattsPerEventPerSecond < 2.22e-10 || term.WattsPerEventPerSecond > 2.22e-8 {
				t.Fatalf("instructions coefficient %.3g far from paper's 2.22e-9", term.WattsPerEventPerSecond)
			}
		}
	}
}

func TestCalibrationHigherFrequencyCostsMore(t *testing.T) {
	opts := QuickOptions()
	opts.FixedEvents = hpc.PaperEvents()
	cfg := machine.DefaultConfig()
	cfg.Spec = quickCalibrationSpec()
	cal, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	powerModel, _, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	low, err := powerModel.ModelForFrequency(2100)
	if err != nil {
		t.Fatal(err)
	}
	high, err := powerModel.ModelForFrequency(3300)
	if err != nil {
		t.Fatal(err)
	}
	var lowInstr, highInstr float64
	for _, term := range low.Terms {
		if term.Event == hpc.Instructions.String() {
			lowInstr = term.WattsPerEventPerSecond
		}
	}
	for _, term := range high.Terms {
		if term.Event == hpc.Instructions.String() {
			highInstr = term.WattsPerEventPerSecond
		}
	}
	if highInstr <= lowInstr {
		t.Fatalf("energy per instruction at 3.3 GHz (%.3g) not above 2.1 GHz (%.3g)", highInstr, lowInstr)
	}
}

func TestCalibrationSpearmanSelection(t *testing.T) {
	opts := QuickOptions()
	opts.SelectionMethod = stats.MethodSpearman
	cfg := machine.DefaultConfig()
	cfg.Spec = quickCalibrationSpec()
	cal, err := New(cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, report, err := cal.Run()
	if err != nil {
		t.Fatal(err)
	}
	if report.SelectionMethod != "spearman" {
		t.Fatalf("selection method = %q, want spearman", report.SelectionMethod)
	}
}
