package vmbridge

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrameLine bounds one JSON-encoded frame on the wire; a line beyond it is
// a protocol violation, not a bigger buffer waiting to happen.
const maxFrameLine = 64 * 1024

// TCPPublisher is the wire transport of the bridge, the virtio-serial
// stand-in: it listens on a TCP address and streams every published frame to
// every connected guest as one JSON object per line. Connections are
// broadcast fan-out — a guest dialing in receives the frames of every VM and
// filters by name (DelegatedSource does). A slow or dead connection sheds
// frames drop-oldest and is dropped on write failure; it never backpressures
// the host pipeline.
type TCPPublisher struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[uint64]*tcpConn
	nextID uint64
	closed bool

	sent    atomic.Uint64
	dropped atomic.Uint64
}

type tcpConn struct {
	conn  net.Conn
	lines *frameChan // frames pending for this connection, drop-oldest
}

// ListenTCP starts a frame publisher on addr ("127.0.0.1:9191"; port 0 picks
// a free one — see Addr).
func ListenTCP(addr string) (*TCPPublisher, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vmbridge: listen on %s: %w", addr, err)
	}
	p := &TCPPublisher{ln: ln, conns: make(map[uint64]*tcpConn)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address the publisher listens on.
func (p *TCPPublisher) Addr() net.Addr { return p.ln.Addr() }

// Connections returns how many guests are currently connected.
func (p *TCPPublisher) Connections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// Sent returns how many frame deliveries reached a connection's wire so far.
func (p *TCPPublisher) Sent() uint64 { return p.sent.Load() }

// Dropped returns how many frame deliveries were lost to dead connections
// (write failures); frames shed by a slow connection's drop-oldest queue are
// not counted here, mirroring a serial port's silent overrun.
func (p *TCPPublisher) Dropped() uint64 { return p.dropped.Load() }

func (p *TCPPublisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &tcpConn{conn: conn, lines: newFrameChan()}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.nextID++
		id := p.nextID
		p.conns[id] = c
		p.mu.Unlock()
		p.wg.Add(1)
		go p.writeLoop(id, c)
	}
}

// writeLoop drains one connection's frame queue onto the wire. A write
// failure (guest went away) drops the connection.
func (p *TCPPublisher) writeLoop(id uint64, c *tcpConn) {
	defer p.wg.Done()
	defer c.conn.Close()
	w := bufio.NewWriter(c.conn)
	for frame := range c.lines.ch {
		line, err := json.Marshal(frame)
		if err != nil {
			p.dropped.Add(1)
			continue
		}
		line = append(line, '\n')
		if _, err := w.Write(line); err != nil {
			p.dropConn(id)
			return
		}
		// One flush per frame keeps latency at one round, not one buffer
		// fill; the queue already batches bursts.
		if err := w.Flush(); err != nil {
			p.dropConn(id)
			return
		}
		p.sent.Add(1)
	}
}

func (p *TCPPublisher) dropConn(id uint64) {
	p.mu.Lock()
	c, ok := p.conns[id]
	delete(p.conns, id)
	p.mu.Unlock()
	if ok {
		p.dropped.Add(1)
		c.lines.close()
		c.conn.Close()
	}
}

// Send implements Transport: the frame is queued for every live connection
// (drop-oldest per connection). With no guest connected the frame is simply
// lost, like writing to an unattached serial port.
func (p *TCPPublisher) Send(frame VMPowerFrame) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	snapshot := make([]*tcpConn, 0, len(p.conns))
	for _, c := range p.conns {
		snapshot = append(snapshot, c)
	}
	p.mu.Unlock()
	for _, c := range snapshot {
		c.lines.deliver(frame)
	}
	return nil
}

// Close implements Transport: the listener and every connection shut down,
// so connected guests observe link loss. It is idempotent.
func (p *TCPPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	remaining := make([]*tcpConn, 0, len(p.conns))
	for _, c := range p.conns {
		remaining = append(remaining, c)
	}
	p.conns = make(map[uint64]*tcpConn)
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range remaining {
		c.lines.close()
		c.conn.Close()
	}
	p.wg.Wait()
	return err
}

// TCPReceiver consumes the JSON-lines frame stream of a TCPPublisher. When
// the connection drops (or the publisher closes), the Frames channel closes —
// the guest-side DelegatedSource turns that into its staleness policy.
type TCPReceiver struct {
	conn   net.Conn
	frames *frameChan
	wg     sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	decodeErrs atomic.Uint64
}

// DialTCP connects to a TCPPublisher at addr.
func DialTCP(addr string) (*TCPReceiver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vmbridge: dial %s: %w", addr, err)
	}
	r := &TCPReceiver{conn: conn, frames: newFrameChan()}
	r.wg.Add(1)
	go r.readLoop()
	return r, nil
}

func (r *TCPReceiver) readLoop() {
	defer r.wg.Done()
	// The read loop is the only deliverer; frames.close afterwards waits out
	// the last deliver, so consumers see every decoded frame, then the close.
	defer r.frames.close()
	scanner := bufio.NewScanner(r.conn)
	scanner.Buffer(make([]byte, 4096), maxFrameLine)
	for scanner.Scan() {
		var frame VMPowerFrame
		if err := json.Unmarshal(scanner.Bytes(), &frame); err != nil {
			// A torn line is a transport glitch, not a reason to kill the
			// link; count it and resync on the next newline.
			r.decodeErrs.Add(1)
			continue
		}
		r.frames.deliver(frame)
	}
}

// Frames implements Receiver.
func (r *TCPReceiver) Frames() <-chan VMPowerFrame { return r.frames.ch }

// DecodeErrors returns how many wire lines failed to decode as frames.
func (r *TCPReceiver) DecodeErrors() uint64 { return r.decodeErrs.Load() }

// Close implements Receiver: the connection closes and the Frames channel
// closes once the read loop drains. It is idempotent.
func (r *TCPReceiver) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.conn.Close()
		r.wg.Wait()
	})
	return r.closeErr
}

// DialTCPWithRetry dials a TCPPublisher, retrying up to attempts times with
// the given pause — a guest daemon typically races the host daemon's
// listener, the way a VM boots before its management agent is up.
func DialTCPWithRetry(addr string, attempts int, pause time.Duration) (*TCPReceiver, error) {
	if attempts < 1 {
		return nil, errors.New("vmbridge: dial attempts must be at least 1")
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(pause)
		}
		r, err := DialTCP(addr)
		if err == nil {
			return r, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("vmbridge: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}
