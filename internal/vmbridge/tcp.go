package vmbridge

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// maxFrameLine bounds one JSON-encoded frame on the wire; a line beyond it is
// a protocol violation, not a bigger buffer waiting to happen. It is sized
// for a fleet frame carrying thousands of rows, not just the VM bridge's
// row-less frames.
const maxFrameLine = 1 << 20

// codecHelloWait bounds how long a publisher connection waits for the
// receiver's codec hello before falling back to JSON-lines. Legacy receivers
// never write, so they cost exactly this once per connection.
const codecHelloWait = 500 * time.Millisecond

// TCPPublisher is the wire transport of the bridge, the virtio-serial
// stand-in: it listens on a TCP address and streams every published batch to
// every connected guest. Connections are broadcast fan-out — a guest dialing
// in receives the frames of every VM and filters by name (DelegatedSource
// does). Each connection speaks the codec its receiver negotiated: JSON-lines
// (the default — one JSON object per line) or binary (the receiver opened
// with a codec hello — one length-prefixed message per batch). A slow or dead
// connection sheds whole batches drop-oldest and is dropped on write failure;
// it never backpressures the host pipeline.
type TCPPublisher struct {
	ln net.Listener
	wg sync.WaitGroup

	mu     sync.Mutex
	conns  map[uint64]*tcpConn
	nextID uint64
	closed bool

	sent    atomic.Uint64
	dropped atomic.Uint64
}

type tcpConn struct {
	conn    net.Conn
	remote  string
	batches *frameChan[[]VMPowerFrame] // batches pending for this connection, drop-oldest
	codec   atomic.Int32               // Codec, set once negotiated
	wire    atomic.Int32               // binary wire version, set once negotiated
	sent    atomic.Uint64              // frames written to the wire
}

// ConnStats is the observable state of one live publisher connection, the
// per-connection rows /metrics exposes.
type ConnStats struct {
	// Remote is the receiver's address.
	Remote string
	// Codec is the negotiated wire encoding ("json", "binary").
	Codec Codec
	// WireVersion is the negotiated binary wire version (0 on JSON-lines):
	// BinaryVersionProvenance when the receiver requested provenance stamps,
	// BinaryVersionBase for an old peer.
	WireVersion int
	// SentFrames counts frames written to this connection's wire.
	SentFrames uint64
	// DroppedBatches counts whole batches shed drop-oldest because the
	// connection could not keep up.
	DroppedBatches uint64
}

// ListenTCP starts a frame publisher on addr ("127.0.0.1:9191"; port 0 picks
// a free one — see Addr).
func ListenTCP(addr string) (*TCPPublisher, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vmbridge: listen on %s: %w", addr, err)
	}
	p := &TCPPublisher{ln: ln, conns: make(map[uint64]*tcpConn)}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address the publisher listens on.
func (p *TCPPublisher) Addr() net.Addr { return p.ln.Addr() }

// Connections returns how many guests are currently connected.
func (p *TCPPublisher) Connections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// ConnStats snapshots every live connection, sorted by remote address.
func (p *TCPPublisher) ConnStats() []ConnStats {
	p.mu.Lock()
	stats := make([]ConnStats, 0, len(p.conns))
	for _, c := range p.conns {
		stats = append(stats, ConnStats{
			Remote:         c.remote,
			Codec:          Codec(c.codec.Load()),
			WireVersion:    int(c.wire.Load()),
			SentFrames:     c.sent.Load(),
			DroppedBatches: c.batches.evicted.Load(),
		})
	}
	p.mu.Unlock()
	sort.Slice(stats, func(i, j int) bool { return stats[i].Remote < stats[j].Remote })
	return stats
}

// Sent returns how many frame deliveries reached a connection's wire so far.
func (p *TCPPublisher) Sent() uint64 { return p.sent.Load() }

// Dropped returns how many frame deliveries were lost to dead connections
// (write failures); frames shed by a slow connection's drop-oldest queue are
// not counted here, mirroring a serial port's silent overrun — ConnStats
// surfaces those per connection.
func (p *TCPPublisher) Dropped() uint64 { return p.dropped.Load() }

func (p *TCPPublisher) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &tcpConn{conn: conn, remote: conn.RemoteAddr().String(), batches: newFrameChan[[]VMPowerFrame]()}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.nextID++
		id := p.nextID
		p.conns[id] = c
		p.mu.Unlock()
		p.wg.Add(1)
		go p.writeLoop(id, c)
	}
}

// negotiate waits briefly for the receiver's codec hello; no hello (a legacy
// receiver's first bytes, or silence until the deadline) keeps JSON-lines. A
// binary hello may be followed by the provenance capability line, upgrading
// the connection to wire version 2; an old receiver stops at the hello, so the
// capability peek runs out the same deadline and version 1 stands. The
// publisher never reads the connection again after this.
func negotiate(conn net.Conn) (Codec, int) {
	conn.SetReadDeadline(time.Now().Add(codecHelloWait))
	defer conn.SetReadDeadline(time.Time{})
	br := bufio.NewReaderSize(conn, len(helloLine)+len(capsLine))
	if readHello(br) == CodecJSON {
		return CodecJSON, 0
	}
	if readCaps(br) {
		return CodecBinary, BinaryVersionProvenance
	}
	return CodecBinary, BinaryVersionBase
}

// writeLoop drains one connection's batch queue onto the wire — one buffered
// write+flush per batch on either codec, so a node's whole round costs one
// syscall. A write failure (guest went away) drops the connection.
func (p *TCPPublisher) writeLoop(id uint64, c *tcpConn) {
	defer p.wg.Done()
	defer c.conn.Close()
	codec, wire := negotiate(c.conn)
	c.codec.Store(int32(codec))
	c.wire.Store(int32(wire))
	w := bufio.NewWriterSize(c.conn, 32*1024)
	var scratch []byte // binary encoding buffer, reused across batches
	for batch := range c.batches.ch {
		var err error
		written := len(batch)
		if codec == CodecBinary {
			scratch = AppendBinaryBatchVersion(scratch[:0], batch, wire)
			_, err = w.Write(scratch)
		} else {
			for _, frame := range batch {
				line, merr := json.Marshal(frame)
				if merr != nil {
					p.dropped.Add(1)
					written--
					continue
				}
				line = append(line, '\n')
				if _, err = w.Write(line); err != nil {
					break
				}
			}
		}
		if err == nil {
			err = w.Flush()
		}
		if err != nil {
			p.dropConn(id)
			return
		}
		p.sent.Add(uint64(written))
		c.sent.Add(uint64(written))
	}
}

func (p *TCPPublisher) dropConn(id uint64) {
	p.mu.Lock()
	c, ok := p.conns[id]
	delete(p.conns, id)
	p.mu.Unlock()
	if ok {
		p.dropped.Add(1)
		c.batches.close()
		c.conn.Close()
	}
}

// Send implements Transport: the frame is queued as a single-frame batch for
// every live connection (drop-oldest per connection). With no guest connected
// the frame is simply lost, like writing to an unattached serial port.
func (p *TCPPublisher) Send(frame VMPowerFrame) error {
	return p.SendBatch([]VMPowerFrame{frame})
}

// SendBatch implements Transport: the batch is queued as a unit for every
// live connection, so a connection that sheds load sheds whole rounds. The
// publisher keeps a reference to the slice until every connection has written
// it; the caller must not modify it after the call.
func (p *TCPPublisher) SendBatch(frames []VMPowerFrame) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	snapshot := make([]*tcpConn, 0, len(p.conns))
	for _, c := range p.conns {
		snapshot = append(snapshot, c)
	}
	p.mu.Unlock()
	if len(frames) == 0 {
		return nil
	}
	for _, c := range snapshot {
		c.batches.deliver(frames)
	}
	return nil
}

// Close implements Transport: the listener and every connection shut down,
// so connected guests observe link loss. It is idempotent.
func (p *TCPPublisher) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	remaining := make([]*tcpConn, 0, len(p.conns))
	for _, c := range p.conns {
		remaining = append(remaining, c)
	}
	p.conns = make(map[uint64]*tcpConn)
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range remaining {
		c.batches.close()
		c.conn.Close()
	}
	p.wg.Wait()
	return err
}

// TCPReceiver consumes the frame stream of a TCPPublisher on either codec.
// When the connection drops (or the publisher closes), the Frames channel
// closes — the guest-side DelegatedSource turns that into its staleness
// policy.
type TCPReceiver struct {
	conn   net.Conn
	codec  Codec
	frames *frameChan[VMPowerFrame]
	wg     sync.WaitGroup

	closeOnce sync.Once
	closeErr  error

	decodeErrs atomic.Uint64
}

// DialTCP connects to a TCPPublisher at addr on the JSON-lines codec.
func DialTCP(addr string) (*TCPReceiver, error) {
	return DialTCPCodec(addr, CodecJSON)
}

// DialTCPCodec connects to a TCPPublisher at addr on the given codec. Binary
// connections open with the codec hello plus the provenance capability, so a
// current publisher switches to wire version 2 before its first write; an old
// publisher reads only the hello and answers in version 1, which the read loop
// accepts per message.
func DialTCPCodec(addr string, codec Codec) (*TCPReceiver, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("vmbridge: dial %s: %w", addr, err)
	}
	if codec == CodecBinary {
		if err := RequestBinaryProvenance(conn); err != nil {
			conn.Close()
			return nil, fmt.Errorf("vmbridge: dial %s: send codec hello: %w", addr, err)
		}
	}
	r := &TCPReceiver{conn: conn, codec: codec, frames: newFrameChan[VMPowerFrame]()}
	r.wg.Add(1)
	go r.readLoop()
	return r, nil
}

func (r *TCPReceiver) readLoop() {
	defer r.wg.Done()
	// The read loop is the only deliverer; frames.close afterwards waits out
	// the last deliver, so consumers see every decoded frame, then the close.
	defer r.frames.close()
	if r.codec == CodecBinary {
		r.readBinary()
		return
	}
	scanner := bufio.NewScanner(r.conn)
	scanner.Buffer(make([]byte, 4096), maxFrameLine)
	for scanner.Scan() {
		var frame VMPowerFrame
		if err := json.Unmarshal(scanner.Bytes(), &frame); err != nil {
			// A torn line is a transport glitch, not a reason to kill the
			// link; count it and resync on the next newline.
			r.decodeErrs.Add(1)
			continue
		}
		r.frames.deliver(frame)
	}
}

func (r *TCPReceiver) readBinary() {
	br := bufio.NewReaderSize(r.conn, 64*1024)
	var buf []byte
	var frames []VMPowerFrame
	for {
		payload, version, err := ReadBinaryMessageVersion(br, buf[:0])
		if err != nil {
			// Binary framing cannot resync mid-stream: any read or framing
			// error is link loss. Only a malformed message counts as a decode
			// error; EOF and socket errors are just the link going away.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.ErrUnexpectedEOF) {
				r.decodeErrs.Add(1)
			}
			return
		}
		buf = payload
		frames, err = decodeBinaryFramesVersion(payload, version, frames[:0])
		if err != nil {
			r.decodeErrs.Add(1)
			return
		}
		for _, f := range frames {
			r.frames.deliver(f)
		}
	}
}

// Frames implements Receiver.
func (r *TCPReceiver) Frames() <-chan VMPowerFrame { return r.frames.ch }

// Codec returns the wire encoding this receiver negotiated.
func (r *TCPReceiver) Codec() Codec { return r.codec }

// DecodeErrors returns how many wire messages failed to decode as frames.
func (r *TCPReceiver) DecodeErrors() uint64 { return r.decodeErrs.Load() }

// DroppedFrames returns how many decoded frames the receiver's buffer evicted
// unread (a consumer slower than the wire).
func (r *TCPReceiver) DroppedFrames() uint64 { return r.frames.evicted.Load() }

// Close implements Receiver: the connection closes and the Frames channel
// closes once the read loop drains. It is idempotent.
func (r *TCPReceiver) Close() error {
	r.closeOnce.Do(func() {
		r.closeErr = r.conn.Close()
		r.wg.Wait()
	})
	return r.closeErr
}

// maxDialBackoff caps the pause between dial attempts however far the
// exponential climb has gotten.
const maxDialBackoff = 5 * time.Second

// DialTCPWithRetry dials a TCPPublisher on the JSON-lines codec, retrying up
// to attempts times — a guest daemon typically races the host daemon's
// listener, the way a VM boots before its management agent is up.
func DialTCPWithRetry(addr string, attempts int, base time.Duration) (*TCPReceiver, error) {
	return DialTCPCodecWithRetry(addr, CodecJSON, attempts, base)
}

// DialTCPCodecWithRetry dials a TCPPublisher on the given codec, retrying up
// to attempts times with capped exponential backoff: the pause starts at base,
// doubles per attempt up to maxDialBackoff, and is jittered ±25% so a fleet
// of receivers restarting together does not reconnect in lockstep. Failed
// attempts and eventual success-after-retry are surfaced in slog with the
// attempt count.
func DialTCPCodecWithRetry(addr string, codec Codec, attempts int, base time.Duration) (*TCPReceiver, error) {
	if attempts < 1 {
		return nil, errors.New("vmbridge: dial attempts must be at least 1")
	}
	var lastErr error
	pause := base
	for i := 0; i < attempts; i++ {
		if i > 0 {
			time.Sleep(jitter(pause))
			if pause *= 2; pause > maxDialBackoff {
				pause = maxDialBackoff
			}
		}
		r, err := DialTCPCodec(addr, codec)
		if err == nil {
			if i > 0 {
				slog.Info("vmbridge: dial succeeded after retries", "addr", addr, "attempt", i+1, "codec", codec.String())
			}
			return r, nil
		}
		lastErr = err
		if i < attempts-1 {
			slog.Warn("vmbridge: dial failed, backing off", "addr", addr, "attempt", i+1, "attempts", attempts, "backoff", pause, "err", err)
		}
	}
	slog.Warn("vmbridge: dial gave up", "addr", addr, "attempts", attempts, "err", lastErr)
	return nil, fmt.Errorf("vmbridge: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}

// jitter spreads a backoff pause uniformly over ±25% of its nominal value.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	spread := d / 2
	return d - spread/2 + time.Duration(rand.Int63n(int64(spread)+1))
}
