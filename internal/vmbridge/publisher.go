package vmbridge

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/obs"
)

// Publisher is the host side of the bridge: a subscriber on the host monitor
// that turns every sampling round's per-VM rollup into VMPowerFrames on a
// Transport. The subscription is lossless (Block policy), so every completed
// host round yields exactly one frame per VM — the transports, not the
// publisher, are where a slow guest sheds load.
type Publisher struct {
	sub *core.Subscription
	tr  Transport
	// tracer is the host monitor's round tracer: every round's framing and
	// transport sends are stamped as a publish span, so frame latency shows up
	// in the host's debug timeline next to the pipeline's own stages.
	tracer *obs.Tracer
	wg     sync.WaitGroup

	seq       atomic.Uint64
	rounds    atomic.Uint64
	published atomic.Uint64
	sendErrs  atomic.Uint64
	lastErr   atomic.Value // error

	closeOnce sync.Once
}

// NewPublisher subscribes a frame publisher to the monitor's report fanout
// and starts streaming. The monitor must have VM definitions (core.WithVMs) —
// without them no round ever carries a per-VM rollup and the bridge would
// silently stream nothing. The publisher owns the transport: Close shuts both
// the subscription and the transport down.
func NewPublisher(mon *core.PowerAPI, tr Transport) (*Publisher, error) {
	if mon == nil {
		return nil, errors.New("vmbridge: nil monitor")
	}
	if tr == nil {
		return nil, errors.New("vmbridge: nil transport")
	}
	if len(mon.VMs()) == 0 {
		return nil, errors.New("vmbridge: the monitor defines no VMs (core.WithVMs)")
	}
	sub, err := mon.Subscribe(core.SubscribeOptions{Name: "vmbridge-publisher", Policy: core.Block})
	if err != nil {
		return nil, fmt.Errorf("vmbridge: subscribe: %w", err)
	}
	p := &Publisher{sub: sub, tr: tr, tracer: mon.Tracer()}
	p.wg.Add(1)
	go p.run()
	return p, nil
}

func (p *Publisher) run() {
	defer p.wg.Done()
	for report := range p.sub.C() {
		if len(report.PerVM) == 0 {
			report.Release()
			continue
		}
		ts := report.Timestamp
		traceStart := p.tracer.Now()
		// Deterministic frame order per round: sorted VM names, one global
		// monotonic sequence across all VMs. The round goes out as one batch,
		// so the transport writes it in one flush and slow links shed whole
		// rounds instead of tearing them. The batch is freshly allocated per
		// round because the transport retains the slice until written.
		names := make([]string, 0, len(report.PerVM))
		for name := range report.PerVM {
			names = append(names, name)
		}
		sort.Strings(names)
		// Provenance: every frame of the round shares one round number and
		// trace id (Seq stays per-frame), emitted at one clock stamp.
		round := p.rounds.Add(1)
		emit := time.Duration(p.tracer.Now())
		traceID := FrameTraceID("vmbridge", round)
		batch := make([]VMPowerFrame, 0, len(names))
		for _, name := range names {
			batch = append(batch, VMPowerFrame{
				VM:             name,
				Seq:            p.seq.Add(1),
				Timestamp:      report.Timestamp,
				Watts:          report.PerVM[name],
				HostTotalWatts: report.TotalWatts,
				SourceMode:     report.SourceMode,
				EmitMono:       emit,
				Round:          round,
				TraceID:        traceID,
			})
		}
		report.Release()
		if err := p.tr.SendBatch(batch); err != nil {
			p.sendErrs.Add(1)
			p.lastErr.Store(err)
		} else {
			p.published.Add(uint64(len(batch)))
		}
		p.tracer.Record(ts, obs.StagePublish, 0, traceStart, p.tracer.Now())
	}
}

// Published returns how many frames were handed to the transport so far.
func (p *Publisher) Published() uint64 { return p.published.Load() }

// SendErrors returns how many frames the transport refused.
func (p *Publisher) SendErrors() uint64 { return p.sendErrs.Load() }

// LastError returns the most recent transport error (nil if none).
func (p *Publisher) LastError() error {
	if v := p.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close detaches the publisher from the monitor and closes the transport, so
// connected guests observe link loss. It is idempotent and safe while rounds
// are in flight.
func (p *Publisher) Close() error {
	var err error
	p.closeOnce.Do(func() {
		p.sub.Close()
		p.wg.Wait()
		err = p.tr.Close()
	})
	return err
}
