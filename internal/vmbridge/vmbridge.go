// Package vmbridge connects two PowerAPI instances across the host/guest
// boundary of a virtual machine — the paper's headline middleware capability:
// process-level power estimation *inside* VMs. The host-side instance
// estimates each VM's power draw (the PerVM rollup of its aggregated reports)
// and a Publisher streams one VMPowerFrame per VM per sampling round over a
// Transport. On the guest side a DelegatedSource — an ordinary machine-scope
// source.Source — treats the latest delegated frame as the guest machine's
// measured power, so a nested PowerAPI instance re-attributes it across the
// guest's processes with the same global weight normalization the attributed
// sensing modes use: the guest's per-process estimates sum exactly to the
// watts the host delegated.
//
// Two transports ship with the package: an in-process Loopback (tests,
// examples, simulated guests) and a TCP/JSON-lines link (the virtio-serial
// stand-in the daemon serves with -vm-publish and dials with -vm-delegate).
// Both fan every frame out to every receiver; receivers filter by VM name.
// Frame delivery is deliberately lossy (drop-oldest, like a serial port
// buffer): a stalled guest never backpressures the host pipeline, and the
// DelegatedSource's staleness policy defines what the guest reports when
// frames stop arriving.
package vmbridge

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// VMPowerFrame is one delegated power figure: the host-side estimate of one
// VM's draw for one sampling round, serialised as a JSON line on the wire.
type VMPowerFrame struct {
	// VM names the virtual machine the frame belongs to.
	VM string `json:"vm"`
	// Seq increases monotonically across the frames a Publisher emits, so a
	// receiver can tell a fresh frame from a replayed or reordered one.
	Seq uint64 `json:"seq"`
	// Timestamp is the host's simulated instant of the round.
	Timestamp time.Duration `json:"timestamp"`
	// Watts is the power the host attributed to the VM for the round.
	Watts float64 `json:"watts"`
	// HostTotalWatts is the host machine's total estimate for the round
	// (context for billing/capping consumers; the guest does not use it).
	HostTotalWatts float64 `json:"hostTotalWatts,omitempty"`
	// SourceMode names the host's sensing mode ("blended", "rapl", …).
	SourceMode string `json:"sourceMode,omitempty"`
	// Rows optionally carries a per-target breakdown of the frame's watts —
	// the fleet tier's payload, where a daemon publishes one frame per round
	// with VM set to its node name and one row per attributed target. Frames
	// on the host↔guest VM bridge carry no rows.
	Rows []TargetRow `json:"rows,omitempty"`

	// EmitMono is the publisher's monotonic clock at emit time (nanoseconds
	// since its tracer epoch) — the provenance stamp a collector differences
	// against its own clock to estimate per-node ingest lag and clock skew.
	// Emit and arrival clocks share no epoch, so only deltas are meaningful.
	// Zero means the peer predates provenance (or disabled it); consumers
	// must treat the frame as unstamped, not as emitted at the epoch.
	EmitMono time.Duration `json:"emitMono,omitempty"`
	// Round is the publisher's round sequence the frame belongs to. For node
	// frames it equals Seq (one frame per round); for VM-bridge frames every
	// frame of one round shares the round number while Seq stays per-frame.
	Round uint64 `json:"round,omitempty"`
	// TraceID correlates every frame of one publisher round across process
	// boundaries (FrameTraceID derives it from the publisher name and round).
	TraceID uint64 `json:"traceId,omitempty"`
}

// FrameTraceID derives the stable trace id publishers stamp on a round's
// frames: FNV-1a over the publisher name folded with the round number. Two
// daemons never share an id stream, and a round's id is reproducible from its
// provenance fields alone.
func FrameTraceID(name string, round uint64) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	h ^= round
	h *= prime
	return h
}

// TargetRow is one entry of a frame's per-target breakdown: the target's
// route string ("cgroup:web/api", "machine") and its watts for the round.
type TargetRow struct {
	Key   string  `json:"key"`
	Watts float64 `json:"watts"`
}

// Transport is the host-side half of a bridge: Send publishes one frame to
// every connected receiver. Implementations must be safe for concurrent use
// and must never block on a slow receiver (shed frames instead).
type Transport interface {
	// Send delivers a frame to every live receiver. Sending on a closed
	// transport returns ErrClosed.
	Send(frame VMPowerFrame) error
	// SendBatch delivers one round's frames as a unit: receivers that shed
	// load shed whole rounds, and wire transports write one round per flush
	// (one message per round on the binary codec). The transport keeps a
	// reference to the slice — the caller must not modify it after the call.
	SendBatch(frames []VMPowerFrame) error
	// Close tears the transport down; receivers observe their frame channel
	// closing (link loss).
	Close() error
}

// Receiver is the guest-side half of a bridge: a stream of delegated frames.
type Receiver interface {
	// Frames returns the channel delegated frames arrive on. The channel is
	// closed when the link is lost or the receiver is closed, so consumers
	// ranging over it terminate.
	Frames() <-chan VMPowerFrame
	// Close releases the receiver.
	Close() error
}

// ErrClosed is returned when sending on a closed transport.
var ErrClosed = errors.New("vmbridge: transport is closed")

// frameBuffer is the per-receiver channel capacity of both transports: deep
// enough to ride out scheduling jitter, shallow enough that a dead guest
// holds only a bounded backlog before drop-oldest kicks in.
const frameBuffer = 64

// frameChan is a drop-oldest queue shared by the transports — of frames on
// the receiver side, of whole batches on the publisher side: the sender-side
// deliver never blocks (it evicts the oldest unread element to make room) and
// close is race-free against an in-flight deliver, the same send-mutex +
// done-channel handshake the monitor's subscription fanout uses.
type frameChan[T any] struct {
	ch        chan T
	done      chan struct{}
	sendMu    sync.Mutex
	closeOnce sync.Once
	evicted   atomic.Uint64
}

func newFrameChan[T any]() *frameChan[T] {
	return &frameChan[T]{ch: make(chan T, frameBuffer), done: make(chan struct{})}
}

// deliver enqueues one element, evicting the oldest unread one when the
// buffer is full. Safe against a concurrent close; only one goroutine may
// deliver.
func (f *frameChan[T]) deliver(v T) {
	f.sendMu.Lock()
	defer f.sendMu.Unlock()
	select {
	case <-f.done:
		return
	default:
	}
	for {
		select {
		case f.ch <- v:
			return
		default:
		}
		select {
		case <-f.ch:
			f.evicted.Add(1)
		default:
		}
	}
}

// close closes the frame channel once, waiting out any deliver in flight.
func (f *frameChan[T]) close() {
	f.closeOnce.Do(func() {
		close(f.done)
		f.sendMu.Lock()
		close(f.ch)
		f.sendMu.Unlock()
	})
}

// Loopback is the in-process transport: Send fans every frame out to every
// receiver created with NewReceiver. It stands in for the host↔guest channel
// when both instances live in one process (tests, examples, simulated
// guests).
type Loopback struct {
	mu        sync.Mutex
	receivers map[uint64]*loopbackReceiver
	nextID    uint64
	closed    bool
}

// NewLoopback creates an in-process bridge transport with no receivers yet.
func NewLoopback() *Loopback {
	return &Loopback{receivers: make(map[uint64]*loopbackReceiver)}
}

// NewReceiver attaches one receiver to the loopback; every subsequent Send
// reaches it. A receiver created after Close is already closed (its Frames
// channel is closed), mirroring a dial against a dead link.
func (l *Loopback) NewReceiver() Receiver {
	r := &loopbackReceiver{hub: l, frames: newFrameChan[VMPowerFrame]()}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		r.frames.close()
		return r
	}
	l.nextID++
	r.id = l.nextID
	l.receivers[r.id] = r
	l.mu.Unlock()
	return r
}

// Send implements Transport.
func (l *Loopback) Send(frame VMPowerFrame) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	snapshot := make([]*loopbackReceiver, 0, len(l.receivers))
	for _, r := range l.receivers {
		snapshot = append(snapshot, r)
	}
	l.mu.Unlock()
	for _, r := range snapshot {
		r.frames.deliver(frame)
	}
	return nil
}

// SendBatch implements Transport: the loopback has no wire to batch writes
// on, so the batch degenerates to one Send per frame.
func (l *Loopback) SendBatch(frames []VMPowerFrame) error {
	for _, f := range frames {
		if err := l.Send(f); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Transport: every receiver's Frames channel closes (link
// loss) and further Sends fail. It is idempotent.
func (l *Loopback) Close() error {
	l.mu.Lock()
	l.closed = true
	remaining := make([]*loopbackReceiver, 0, len(l.receivers))
	for _, r := range l.receivers {
		remaining = append(remaining, r)
	}
	l.receivers = make(map[uint64]*loopbackReceiver)
	l.mu.Unlock()
	for _, r := range remaining {
		r.frames.close()
	}
	return nil
}

type loopbackReceiver struct {
	hub    *Loopback
	id     uint64
	frames *frameChan[VMPowerFrame]
}

// Frames implements Receiver.
func (r *loopbackReceiver) Frames() <-chan VMPowerFrame { return r.frames.ch }

// Close implements Receiver: the receiver detaches from the loopback and its
// Frames channel closes.
func (r *loopbackReceiver) Close() error {
	r.hub.mu.Lock()
	delete(r.hub.receivers, r.id)
	r.hub.mu.Unlock()
	r.frames.close()
	return nil
}
