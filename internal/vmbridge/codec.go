package vmbridge

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The wire speaks two codecs. JSON-lines is the original format and the
// default: one frame per line, self-describing, debuggable with nc. The binary
// codec is for the fleet tier, where a collector ingests thousands of frames
// per second and the JSON costs (quoting, float formatting, per-frame
// allocation on decode) dominate: one length-prefixed message carries a whole
// round's batch, strings are length-prefixed bytes, floats are raw IEEE 754.
// A connection's codec is negotiated once, by the receiver: its first bytes
// are either a codec hello line (binary from then on) or nothing (a legacy
// receiver never writes, so the publisher falls back to JSON after a short
// wait).

// Codec identifies the wire encoding of one publisher connection.
type Codec int

// Wire codecs.
const (
	// CodecJSON is one JSON-encoded frame per newline-terminated line — the
	// compatibility default.
	CodecJSON Codec = iota
	// CodecBinary is length-prefixed binary batches: one message per
	// published batch, one write per round.
	CodecBinary
)

// String implements fmt.Stringer ("json", "binary").
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// helloLine is the exact line a receiver writes as its very first bytes to
// switch its connection to the binary codec.
const helloLine = "powerapi-codec binary\n"

// RequestBinary asks the publisher on the other end of the connection to
// speak the binary codec. It must be the first thing the receiver writes,
// before any frame has a chance to arrive; DialTCPCodec does this.
func RequestBinary(w io.Writer) error {
	_, err := io.WriteString(w, helloLine)
	return err
}

// binaryMagic opens every binary message, so a receiver that accidentally
// points at a JSON publisher (or vice versa) fails loudly instead of decoding
// garbage.
var binaryMagic = [4]byte{'P', 'W', 'B', '1'}

// BinaryMessageHeader is the size of the fixed message prefix (magic plus
// uint32 payload length). AppendBinaryBatch emits it; ReadBinaryMessage
// consumes it and returns the bare payload — a feeder handing payloads
// straight to a decoder (collector.FeedPayload) strips this many bytes.
const BinaryMessageHeader = 8

// maxBinaryPayload bounds one binary message. It is sized for a full fleet
// round from one node (a million rows would still fit), so hitting it is a
// protocol violation, not a bigger buffer waiting to happen.
const maxBinaryPayload = 64 << 20

// errBadMagic reports a binary message that does not start with the magic.
var errBadMagic = errors.New("vmbridge: bad binary frame magic")

// errMalformed reports a binary payload that ends mid-frame.
var errMalformed = errors.New("vmbridge: malformed binary frame payload")

// minRowBytes is the smallest wire footprint of one row: a one-byte uvarint
// for an empty key plus the eight-byte float. A frame claiming more rows than
// the remaining payload could possibly hold is malformed, and rejecting it up
// front keeps a hostile header from driving a huge presize in consumers that
// trust FrameHeader.Rows (decodeBinaryFrames does).
const minRowBytes = 9

// AppendBinaryBatch appends one binary wire message encoding the whole batch
// to dst and returns the extended slice. Encoding allocates only when dst's
// capacity is exceeded, so a publisher reusing its scratch buffer encodes
// steady-state rounds allocation-free.
//
// Message layout: magic, uint32 LE payload length, payload. Payload layout:
// uvarint frame count, then per frame: uvarint-prefixed VM name, uvarint Seq,
// uvarint Timestamp (ns), float64 LE Watts, float64 LE HostTotalWatts,
// uvarint-prefixed SourceMode, uvarint row count, then per row a
// uvarint-prefixed key and a float64 LE watts.
//
//powerapi:hotpath
func AppendBinaryBatch(dst []byte, frames []VMPowerFrame) []byte {
	dst = append(dst, binaryMagic[:]...)
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	dst = binary.AppendUvarint(dst, uint64(len(frames)))
	for i := range frames {
		f := &frames[i]
		dst = appendString(dst, f.VM)
		dst = binary.AppendUvarint(dst, f.Seq)
		dst = binary.AppendUvarint(dst, uint64(f.Timestamp))
		dst = appendFloat(dst, f.Watts)
		dst = appendFloat(dst, f.HostTotalWatts)
		dst = appendString(dst, f.SourceMode)
		dst = binary.AppendUvarint(dst, uint64(len(f.Rows)))
		for _, row := range f.Rows {
			dst = appendString(dst, row.Key)
			dst = appendFloat(dst, row.Watts)
		}
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

//powerapi:hotpath
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

//powerapi:hotpath
func appendFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// ReadBinaryMessage reads one binary message from r and returns its payload,
// reusing buf's backing array when it is large enough. The returned slice is
// only valid until the next call with the same buffer.
//
//powerapi:hotpath
func ReadBinaryMessage(r io.Reader, buf []byte) ([]byte, error) {
	var head [BinaryMessageHeader]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	if [4]byte(head[:4]) != binaryMagic {
		return nil, errBadMagic
	}
	n := binary.LittleEndian.Uint32(head[4:])
	if n > maxBinaryPayload {
		//powerapi:allow hotpath error path: only a malformed or hostile header reaches this
		return nil, fmt.Errorf("vmbridge: binary payload of %d bytes exceeds the %d limit", n, maxBinaryPayload)
	}
	if uint32(cap(buf)) < n {
		//powerapi:allow hotpath amortized growth: the caller reuses the returned buffer across reads
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// FrameHeader is the fixed part of one binary frame as the streaming decoder
// yields it. VM and SourceMode alias the payload buffer — they are valid only
// for the duration of the callback and must be copied to be retained.
type FrameHeader struct {
	VM             []byte
	Seq            uint64
	Timestamp      time.Duration
	Watts          float64
	HostTotalWatts float64
	SourceMode     []byte
	Rows           int
}

// DecodeBinaryBatch walks one binary payload, calling frame once per frame
// and row once per row of that frame, in wire order. All byte slices handed
// to the callbacks alias the payload — the zero-copy contract that lets the
// collector fold a million rows per second into its slot maps without
// allocating per row. If frame returns false the frame's rows are skipped
// (decoded to advance, not reported). A nil row callback skips all rows.
//
//powerapi:hotpath
func DecodeBinaryBatch(payload []byte, frame func(h FrameHeader) bool, row func(key []byte, watts float64)) error {
	count, payload, ok := takeUvarint(payload)
	if !ok {
		return errMalformed
	}
	for i := uint64(0); i < count; i++ {
		var h FrameHeader
		var seq, ts, rows uint64
		if h.VM, payload, ok = takeBytes(payload); !ok {
			return errMalformed
		}
		if seq, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if ts, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if h.Watts, payload, ok = takeFloat(payload); !ok {
			return errMalformed
		}
		if h.HostTotalWatts, payload, ok = takeFloat(payload); !ok {
			return errMalformed
		}
		if h.SourceMode, payload, ok = takeBytes(payload); !ok {
			return errMalformed
		}
		if rows, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if rows > uint64(len(payload))/minRowBytes {
			return errMalformed
		}
		h.Seq, h.Timestamp, h.Rows = seq, time.Duration(ts), int(rows)
		want := frame(h) && row != nil
		for j := uint64(0); j < rows; j++ {
			var key []byte
			var watts float64
			if key, payload, ok = takeBytes(payload); !ok {
				return errMalformed
			}
			if watts, payload, ok = takeFloat(payload); !ok {
				return errMalformed
			}
			if want {
				row(key, watts)
			}
		}
	}
	if len(payload) != 0 {
		return errMalformed
	}
	return nil
}

// decodeBinaryFrames decodes a payload into owned VMPowerFrame values — the
// guest receiver's channel path, where per-frame allocation is fine.
func decodeBinaryFrames(payload []byte, dst []VMPowerFrame) ([]VMPowerFrame, error) {
	err := DecodeBinaryBatch(payload,
		func(h FrameHeader) bool {
			f := VMPowerFrame{
				VM:             string(h.VM),
				Seq:            h.Seq,
				Timestamp:      h.Timestamp,
				Watts:          h.Watts,
				HostTotalWatts: h.HostTotalWatts,
				SourceMode:     string(h.SourceMode),
			}
			if h.Rows > 0 {
				f.Rows = make([]TargetRow, 0, h.Rows)
			}
			dst = append(dst, f)
			return true
		},
		func(key []byte, watts float64) {
			f := &dst[len(dst)-1]
			f.Rows = append(f.Rows, TargetRow{Key: string(key), Watts: watts})
		})
	return dst, err
}

//powerapi:hotpath
func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

//powerapi:hotpath
func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeUvarint(b)
	if !ok || uint64(len(rest)) < n {
		return nil, b, false
	}
	return rest[:n], rest[n:], true
}

//powerapi:hotpath
func takeFloat(b []byte) (float64, []byte, bool) {
	if len(b) < 8 {
		return 0, b, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], true
}

// readHello consumes a receiver's codec hello from the connection if one
// arrives before the deadline expires. Legacy receivers never write, so a
// timeout (or anything that is not the hello) selects JSON-lines.
func readHello(r *bufio.Reader) Codec {
	peek, err := r.Peek(len(helloLine))
	if err != nil || string(peek) != helloLine {
		return CodecJSON
	}
	r.Discard(len(helloLine))
	return CodecBinary
}
