package vmbridge

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// The wire speaks two codecs. JSON-lines is the original format and the
// default: one frame per line, self-describing, debuggable with nc. The binary
// codec is for the fleet tier, where a collector ingests thousands of frames
// per second and the JSON costs (quoting, float formatting, per-frame
// allocation on decode) dominate: one length-prefixed message carries a whole
// round's batch, strings are length-prefixed bytes, floats are raw IEEE 754.
// A connection's codec is negotiated once, by the receiver: its first bytes
// are either a codec hello line (binary from then on) or nothing (a legacy
// receiver never writes, so the publisher falls back to JSON after a short
// wait).

// Codec identifies the wire encoding of one publisher connection.
type Codec int

// Wire codecs.
const (
	// CodecJSON is one JSON-encoded frame per newline-terminated line — the
	// compatibility default.
	CodecJSON Codec = iota
	// CodecBinary is length-prefixed binary batches: one message per
	// published batch, one write per round.
	CodecBinary
)

// String implements fmt.Stringer ("json", "binary").
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// helloLine is the exact line a receiver writes as its very first bytes to
// switch its connection to the binary codec. It never changes across wire
// versions: an old publisher peeks exactly these bytes, so any extension must
// ride AFTER them (capsLine) where a peer that does not expect it simply never
// reads it.
const helloLine = "powerapi-codec binary\n"

// capsLine is the optional capability line a receiver writes immediately after
// the hello to request provenance-stamped binary messages (wire version 2).
// Old publishers stop reading after the hello, so the line is harmless to
// them; new publishers peek for it within the same negotiation deadline and
// fall back to version 1 when it does not arrive.
const capsLine = "powerapi-caps provenance\n"

// Binary wire versions. The version is carried per message in the magic
// (PWB1/PWB2), so a decoder never guesses from negotiation state alone.
const (
	// BinaryVersionBase is the original layout: no provenance fields.
	BinaryVersionBase = 1
	// BinaryVersionProvenance adds three uvarints per frame (EmitMono, Round,
	// TraceID) between the source mode and the row count.
	BinaryVersionProvenance = 2
)

// RequestBinary asks the publisher on the other end of the connection to
// speak the binary codec. It must be the first thing the receiver writes,
// before any frame has a chance to arrive; DialTCPCodec does this.
func RequestBinary(w io.Writer) error {
	_, err := io.WriteString(w, helloLine)
	return err
}

// RequestBinaryProvenance asks for the binary codec with provenance stamps
// (wire version 2). Hello and capability go out as one write so the
// publisher's negotiation peek sees them together; an old publisher reads only
// the hello and keeps speaking version 1, which the receiver must still accept.
func RequestBinaryProvenance(w io.Writer) error {
	_, err := io.WriteString(w, helloLine+capsLine)
	return err
}

// binaryMagic opens every binary message, so a receiver that accidentally
// points at a JSON publisher (or vice versa) fails loudly instead of decoding
// garbage. binaryMagicV2 marks a provenance-stamped message; carrying the
// version in the magic keeps every message self-describing.
var (
	binaryMagic   = [4]byte{'P', 'W', 'B', '1'}
	binaryMagicV2 = [4]byte{'P', 'W', 'B', '2'}
)

// BinaryMessageHeader is the size of the fixed message prefix (magic plus
// uint32 payload length). AppendBinaryBatch emits it; ReadBinaryMessage
// consumes it and returns the bare payload — a feeder handing payloads
// straight to a decoder (collector.FeedPayload) strips this many bytes.
const BinaryMessageHeader = 8

// maxBinaryPayload bounds one binary message. It is sized for a full fleet
// round from one node (a million rows would still fit), so hitting it is a
// protocol violation, not a bigger buffer waiting to happen.
const maxBinaryPayload = 64 << 20

// errBadMagic reports a binary message that does not start with the magic.
var errBadMagic = errors.New("vmbridge: bad binary frame magic")

// errMalformed reports a binary payload that ends mid-frame.
var errMalformed = errors.New("vmbridge: malformed binary frame payload")

// minRowBytes is the smallest wire footprint of one row: a one-byte uvarint
// for an empty key plus the eight-byte float. A frame claiming more rows than
// the remaining payload could possibly hold is malformed, and rejecting it up
// front keeps a hostile header from driving a huge presize in consumers that
// trust FrameHeader.Rows (decodeBinaryFrames does).
const minRowBytes = 9

// AppendBinaryBatch appends one binary wire message encoding the whole batch
// to dst and returns the extended slice. Encoding allocates only when dst's
// capacity is exceeded, so a publisher reusing its scratch buffer encodes
// steady-state rounds allocation-free.
//
// Message layout: magic, uint32 LE payload length, payload. Payload layout:
// uvarint frame count, then per frame: uvarint-prefixed VM name, uvarint Seq,
// uvarint Timestamp (ns), float64 LE Watts, float64 LE HostTotalWatts,
// uvarint-prefixed SourceMode, uvarint row count, then per row a
// uvarint-prefixed key and a float64 LE watts. AppendBinaryBatch always emits
// wire version 1 (provenance fields dropped) — the encoding an old receiver
// negotiated; AppendBinaryBatchVersion emits a chosen version.
//
//powerapi:hotpath
func AppendBinaryBatch(dst []byte, frames []VMPowerFrame) []byte {
	return AppendBinaryBatchVersion(dst, frames, BinaryVersionBase)
}

// AppendBinaryBatchVersion appends one binary wire message at the given wire
// version. Version 2 (BinaryVersionProvenance) inserts three uvarints per
// frame — EmitMono, Round, TraceID — between the source mode and the row
// count; version 1 drops those fields, which is exactly what an old peer
// expects.
//
//powerapi:hotpath
func AppendBinaryBatchVersion(dst []byte, frames []VMPowerFrame, version int) []byte {
	if version >= BinaryVersionProvenance {
		dst = append(dst, binaryMagicV2[:]...)
	} else {
		dst = append(dst, binaryMagic[:]...)
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0) // payload length backfilled below
	dst = binary.AppendUvarint(dst, uint64(len(frames)))
	for i := range frames {
		f := &frames[i]
		dst = appendString(dst, f.VM)
		dst = binary.AppendUvarint(dst, f.Seq)
		dst = binary.AppendUvarint(dst, uint64(f.Timestamp))
		dst = appendFloat(dst, f.Watts)
		dst = appendFloat(dst, f.HostTotalWatts)
		dst = appendString(dst, f.SourceMode)
		if version >= BinaryVersionProvenance {
			dst = binary.AppendUvarint(dst, uint64(f.EmitMono))
			dst = binary.AppendUvarint(dst, f.Round)
			dst = binary.AppendUvarint(dst, f.TraceID)
		}
		dst = binary.AppendUvarint(dst, uint64(len(f.Rows)))
		for _, row := range f.Rows {
			dst = appendString(dst, row.Key)
			dst = appendFloat(dst, row.Watts)
		}
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst
}

//powerapi:hotpath
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

//powerapi:hotpath
func appendFloat(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// ReadBinaryMessage reads one version-1 binary message from r and returns its
// payload, reusing buf's backing array when it is large enough. The returned
// slice is only valid until the next call with the same buffer. A version-2
// message is a bad magic here — version-aware readers use
// ReadBinaryMessageVersion.
//
//powerapi:hotpath
func ReadBinaryMessage(r io.Reader, buf []byte) ([]byte, error) {
	payload, version, err := ReadBinaryMessageVersion(r, buf)
	if err == nil && version != BinaryVersionBase {
		return nil, errBadMagic
	}
	return payload, err
}

// ReadBinaryMessageVersion reads one binary message of either wire version
// from r, returning the bare payload and the version its magic declared. The
// payload reuses buf's backing array when it is large enough and is only valid
// until the next call with the same buffer.
//
//powerapi:hotpath
func ReadBinaryMessageVersion(r io.Reader, buf []byte) ([]byte, int, error) {
	var head [BinaryMessageHeader]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, 0, err
	}
	version, ok := magicVersion([4]byte(head[:4]))
	if !ok {
		return nil, 0, errBadMagic
	}
	n := binary.LittleEndian.Uint32(head[4:])
	if n > maxBinaryPayload {
		//powerapi:allow hotpath error path: only a malformed or hostile header reaches this
		return nil, 0, fmt.Errorf("vmbridge: binary payload of %d bytes exceeds the %d limit", n, maxBinaryPayload)
	}
	if uint32(cap(buf)) < n {
		//powerapi:allow hotpath amortized growth: the caller reuses the returned buffer across reads
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, 0, err
	}
	return buf, version, nil
}

// SplitBinaryMessage validates one complete in-memory wire message (header
// plus payload, as a feeder hands collector.FeedPayload) and returns its bare
// payload view and wire version without copying.
func SplitBinaryMessage(msg []byte) (payload []byte, version int, err error) {
	if len(msg) < BinaryMessageHeader {
		return nil, 0, errMalformed
	}
	version, ok := magicVersion([4]byte(msg[:4]))
	if !ok {
		return nil, 0, errBadMagic
	}
	n := binary.LittleEndian.Uint32(msg[4:])
	if n > maxBinaryPayload || uint64(n) != uint64(len(msg)-BinaryMessageHeader) {
		return nil, 0, errMalformed
	}
	return msg[BinaryMessageHeader:], version, nil
}

//powerapi:hotpath
func magicVersion(magic [4]byte) (int, bool) {
	switch magic {
	case binaryMagic:
		return BinaryVersionBase, true
	case binaryMagicV2:
		return BinaryVersionProvenance, true
	}
	return 0, false
}

// FrameHeader is the fixed part of one binary frame as the streaming decoder
// yields it. VM and SourceMode alias the payload buffer — they are valid only
// for the duration of the callback and must be copied to be retained.
type FrameHeader struct {
	VM             []byte
	Seq            uint64
	Timestamp      time.Duration
	Watts          float64
	HostTotalWatts float64
	SourceMode     []byte
	Rows           int
	// EmitMono/Round/TraceID are the provenance stamps of a version-2 frame;
	// all zero when the message was wire version 1.
	EmitMono time.Duration
	Round    uint64
	TraceID  uint64
}

// DecodeBinaryBatch walks one version-1 binary payload, calling frame once per
// frame and row once per row of that frame, in wire order. All byte slices
// handed to the callbacks alias the payload — the zero-copy contract that lets
// the collector fold a million rows per second into its slot maps without
// allocating per row. If frame returns false the frame's rows are skipped
// (decoded to advance, not reported). A nil row callback skips all rows.
//
//powerapi:hotpath
func DecodeBinaryBatch(payload []byte, frame func(h FrameHeader) bool, row func(key []byte, watts float64)) error {
	return DecodeBinaryBatchVersion(payload, BinaryVersionBase, frame, row)
}

// DecodeBinaryBatchVersion walks one binary payload of the given wire version
// (as ReadBinaryMessageVersion or SplitBinaryMessage reported it) with
// DecodeBinaryBatch's callback and aliasing contract. Version-1 payloads yield
// zero provenance fields.
//
//powerapi:hotpath
func DecodeBinaryBatchVersion(payload []byte, version int, frame func(h FrameHeader) bool, row func(key []byte, watts float64)) error {
	count, payload, ok := takeUvarint(payload)
	if !ok {
		return errMalformed
	}
	for i := uint64(0); i < count; i++ {
		var h FrameHeader
		var seq, ts, rows uint64
		if h.VM, payload, ok = takeBytes(payload); !ok {
			return errMalformed
		}
		if seq, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if ts, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if h.Watts, payload, ok = takeFloat(payload); !ok {
			return errMalformed
		}
		if h.HostTotalWatts, payload, ok = takeFloat(payload); !ok {
			return errMalformed
		}
		if h.SourceMode, payload, ok = takeBytes(payload); !ok {
			return errMalformed
		}
		if version >= BinaryVersionProvenance {
			var emit, traceID uint64
			if emit, payload, ok = takeUvarint(payload); !ok {
				return errMalformed
			}
			if h.Round, payload, ok = takeUvarint(payload); !ok {
				return errMalformed
			}
			if traceID, payload, ok = takeUvarint(payload); !ok {
				return errMalformed
			}
			h.EmitMono, h.TraceID = time.Duration(emit), traceID
		}
		if rows, payload, ok = takeUvarint(payload); !ok {
			return errMalformed
		}
		if rows > uint64(len(payload))/minRowBytes {
			return errMalformed
		}
		h.Seq, h.Timestamp, h.Rows = seq, time.Duration(ts), int(rows)
		want := frame(h) && row != nil
		for j := uint64(0); j < rows; j++ {
			var key []byte
			var watts float64
			if key, payload, ok = takeBytes(payload); !ok {
				return errMalformed
			}
			if watts, payload, ok = takeFloat(payload); !ok {
				return errMalformed
			}
			if want {
				row(key, watts)
			}
		}
	}
	if len(payload) != 0 {
		return errMalformed
	}
	return nil
}

// decodeBinaryFrames decodes a version-1 payload into owned VMPowerFrame
// values — the guest receiver's channel path, where per-frame allocation is
// fine.
func decodeBinaryFrames(payload []byte, dst []VMPowerFrame) ([]VMPowerFrame, error) {
	return decodeBinaryFramesVersion(payload, BinaryVersionBase, dst)
}

// decodeBinaryFramesVersion decodes a payload of the given wire version into
// owned VMPowerFrame values.
func decodeBinaryFramesVersion(payload []byte, version int, dst []VMPowerFrame) ([]VMPowerFrame, error) {
	err := DecodeBinaryBatchVersion(payload, version,
		func(h FrameHeader) bool {
			f := VMPowerFrame{
				VM:             string(h.VM),
				Seq:            h.Seq,
				Timestamp:      h.Timestamp,
				Watts:          h.Watts,
				HostTotalWatts: h.HostTotalWatts,
				SourceMode:     string(h.SourceMode),
				EmitMono:       h.EmitMono,
				Round:          h.Round,
				TraceID:        h.TraceID,
			}
			if h.Rows > 0 {
				f.Rows = make([]TargetRow, 0, h.Rows)
			}
			dst = append(dst, f)
			return true
		},
		func(key []byte, watts float64) {
			f := &dst[len(dst)-1]
			f.Rows = append(f.Rows, TargetRow{Key: string(key), Watts: watts})
		})
	return dst, err
}

//powerapi:hotpath
func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, b, false
	}
	return v, b[n:], true
}

//powerapi:hotpath
func takeBytes(b []byte) ([]byte, []byte, bool) {
	n, rest, ok := takeUvarint(b)
	if !ok || uint64(len(rest)) < n {
		return nil, b, false
	}
	return rest[:n], rest[n:], true
}

//powerapi:hotpath
func takeFloat(b []byte) (float64, []byte, bool) {
	if len(b) < 8 {
		return 0, b, false
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], true
}

// readHello consumes a receiver's codec hello from the connection if one
// arrives before the deadline expires. Legacy receivers never write, so a
// timeout (or anything that is not the hello) selects JSON-lines.
func readHello(r *bufio.Reader) Codec {
	peek, err := r.Peek(len(helloLine))
	if err != nil || string(peek) != helloLine {
		return CodecJSON
	}
	r.Discard(len(helloLine))
	return CodecBinary
}

// readCaps consumes the provenance capability line if the receiver sent one
// after its hello. A receiver that does not (an old peer, or one that stopped
// at the hello) never writes again, so the peek runs out the negotiation
// deadline and the connection stays on wire version 1 — the once-per-connection
// cost the hello wait already established.
func readCaps(r *bufio.Reader) bool {
	peek, err := r.Peek(len(capsLine))
	if err != nil || string(peek) != capsLine {
		return false
	}
	r.Discard(len(capsLine))
	return true
}
