package vmbridge

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

func testBatch() []VMPowerFrame {
	return []VMPowerFrame{
		{
			VM: "node-a", Seq: 7, Timestamp: 3 * time.Second, Watts: 41.5,
			HostTotalWatts: 41.5, SourceMode: "simulated",
			Rows: []TargetRow{
				{Key: "cgroup:web", Watts: 20.25},
				{Key: "cgroup:web/api", Watts: 21.25},
			},
		},
		{VM: "vm-b", Seq: 8, Timestamp: 3 * time.Second, Watts: 11},
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	batch := testBatch()
	wire := AppendBinaryBatch(nil, batch)
	payload, err := ReadBinaryMessage(bytes.NewReader(wire), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeBinaryFrames(payload, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}
}

func TestBinaryCodecRejectsTorn(t *testing.T) {
	wire := AppendBinaryBatch(nil, testBatch())
	if _, err := ReadBinaryMessage(bytes.NewReader(wire[:len(wire)-3]), nil); err == nil {
		t.Fatal("truncated message should not read cleanly")
	}
	payload, err := ReadBinaryMessage(bytes.NewReader(wire), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodeBinaryBatch(payload[:len(payload)-1], func(FrameHeader) bool { return true }, nil); err == nil {
		t.Fatal("truncated payload should fail to decode")
	}
	wire[0] = 'X'
	if _, err := ReadBinaryMessage(bytes.NewReader(wire), nil); err == nil {
		t.Fatal("bad magic should be rejected")
	}
}

func TestStreamingDecodeAliasesPayload(t *testing.T) {
	batch := testBatch()
	wire := AppendBinaryBatch(nil, batch)
	payload := wire[8:]
	var keys []string
	var watts []float64
	err := DecodeBinaryBatch(payload,
		func(h FrameHeader) bool { return len(h.VM) == len("node-a") },
		func(key []byte, w float64) {
			keys = append(keys, string(key))
			watts = append(watts, w)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "cgroup:web" || keys[1] != "cgroup:web/api" {
		t.Fatalf("row keys = %v", keys)
	}
	if watts[0] != 20.25 || watts[1] != 21.25 {
		t.Fatalf("row watts = %v", watts)
	}
}

func TestEncodeSteadyStateAllocFree(t *testing.T) {
	batch := testBatch()
	scratch := AppendBinaryBatch(nil, batch)
	avg := testing.AllocsPerRun(100, func() {
		scratch = AppendBinaryBatch(scratch[:0], batch)
	})
	if avg > 0 {
		t.Fatalf("encode into warm buffer allocates %.1f/op, want 0", avg)
	}
}

// TestCodecNegotiation exercises the per-connection codec switch end to end:
// a binary receiver gets binary batches with rows intact, while a legacy
// JSON receiver on the same publisher keeps its JSON-lines stream.
func TestCodecNegotiation(t *testing.T) {
	pub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	binRecv, err := DialTCPCodec(pub.Addr().String(), CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer binRecv.Close()
	jsonRecv, err := DialTCP(pub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer jsonRecv.Close()

	waitUntil(t, "both connections", func() bool { return pub.Connections() == 2 })
	// The JSON connection only commits to its codec after the hello window
	// lapses; wait until the publisher reports both codecs settled.
	waitUntil(t, "codec negotiation", func() bool {
		stats := pub.ConnStats()
		if len(stats) != 2 {
			return false
		}
		n := 0
		for _, cs := range stats {
			if cs.Codec == CodecBinary {
				n++
			}
		}
		return n == 1
	})

	batch := testBatch()
	if err := pub.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	for name, recv := range map[string]*TCPReceiver{"binary": binRecv, "json": jsonRecv} {
		for i := range batch {
			select {
			case got := <-recv.Frames():
				if !reflect.DeepEqual(got, batch[i]) {
					t.Fatalf("%s receiver frame %d:\n got %+v\nwant %+v", name, i, got, batch[i])
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("%s receiver: frame %d never arrived", name, i)
			}
		}
		if recv.DecodeErrors() != 0 {
			t.Fatalf("%s receiver counted %d decode errors", name, recv.DecodeErrors())
		}
	}
}
