package vmbridge

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/hpc"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/source"
	"powerapi/internal/workload"
)

func testModel() *model.CPUPowerModel {
	m := model.PaperReferenceModel()
	m.AddFrequencyModel(model.FrequencyModel{
		FrequencyMHz: 1600,
		Terms: []model.Term{
			{Event: hpc.Instructions.String(), WattsPerEventPerSecond: 1.1e-9},
			{Event: hpc.CacheReferences.String(), WattsPerEventPerSecond: 1.3e-8},
			{Event: hpc.CacheMisses.String(), WattsPerEventPerSecond: 1.8e-7},
		},
	})
	return m
}

func newTestMachine(t *testing.T) *machine.Machine {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Governor = cpu.GovernorPerformance
	cfg.PowerNoiseStdDevWatts = 0
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func spawnLevels(t *testing.T, m *machine.Machine, levels ...float64) []int {
	t.Helper()
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := workload.CPUStress(level, 0)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	return pids
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLoopbackFanout(t *testing.T) {
	lb := NewLoopback()
	r1 := lb.NewReceiver()
	r2 := lb.NewReceiver()
	frame := VMPowerFrame{VM: "vm-a", Seq: 1, Watts: 12.5}
	if err := lb.Send(frame); err != nil {
		t.Fatal(err)
	}
	for i, r := range []Receiver{r1, r2} {
		select {
		case got := <-r.Frames():
			if !reflect.DeepEqual(got, frame) {
				t.Fatalf("receiver %d: got %+v want %+v", i, got, frame)
			}
		case <-time.After(time.Second):
			t.Fatalf("receiver %d: no frame", i)
		}
	}
	// A closed receiver detaches; the loopback keeps serving the other.
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-r1.Frames(); ok {
		t.Fatal("closed receiver's channel should be closed")
	}
	if err := lb.Send(VMPowerFrame{VM: "vm-a", Seq: 2}); err != nil {
		t.Fatal(err)
	}
	if got := <-r2.Frames(); got.Seq != 2 {
		t.Fatalf("surviving receiver got %+v", got)
	}
	// Close ends the link for everyone and fails further sends.
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-r2.Frames(); ok {
		t.Fatal("closed loopback should close receiver channels")
	}
	if err := lb.Send(VMPowerFrame{}); err != ErrClosed {
		t.Fatalf("send on closed loopback: got %v want ErrClosed", err)
	}
	if _, ok := <-lb.NewReceiver().Frames(); ok {
		t.Fatal("a receiver created after Close should be closed")
	}
}

func TestLoopbackDropOldest(t *testing.T) {
	lb := NewLoopback()
	r := lb.NewReceiver()
	for i := 0; i < frameBuffer+8; i++ {
		if err := lb.Send(VMPowerFrame{VM: "vm", Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	got := <-r.Frames()
	if got.Seq <= 8 {
		t.Fatalf("oldest frames should have been evicted, got seq %d first", got.Seq)
	}
}

func TestDelegatedSourceStaleness(t *testing.T) {
	sample := func(t *testing.T, s *DelegatedSource) source.Sample {
		t.Helper()
		out, err := s.Sample(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	send := func(t *testing.T, lb *Loopback, s *DelegatedSource, seq uint64, watts float64) {
		t.Helper()
		before := s.FrameCount()
		if err := lb.Send(VMPowerFrame{VM: "vm-a", Seq: seq, Watts: watts}); err != nil {
			t.Fatal(err)
		}
		waitUntil(t, "frame consumption", func() bool { return s.FrameCount() > before })
	}

	t.Run("zero", func(t *testing.T) {
		lb := NewLoopback()
		s, err := NewDelegatedSource(lb.NewReceiver(), "vm-a")
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Open(nil); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// Nothing delegated yet: no measurement.
		if got := sample(t, s); got.HasMeasured {
			t.Fatalf("no frame yet: got %+v", got)
		}
		// Frames of other VMs are ignored.
		if err := lb.Send(VMPowerFrame{VM: "vm-b", Seq: 1, Watts: 99}); err != nil {
			t.Fatal(err)
		}
		send(t, lb, s, 2, 20)
		if got := sample(t, s); !got.HasMeasured || got.MeasuredWatts != 20 {
			t.Fatalf("fresh frame: got %+v", got)
		}
		// One missed round is grace (the figure holds)…
		if got := sample(t, s); !got.HasMeasured || got.MeasuredWatts != 20 {
			t.Fatalf("grace round: got %+v", got)
		}
		// …the second missed round trips the zero policy.
		if got := sample(t, s); got.HasMeasured {
			t.Fatalf("stale round should report no measurement, got %+v", got)
		}
		if !s.Stale() {
			t.Fatal("source should report stale")
		}
		// A resuming link recovers immediately.
		send(t, lb, s, 3, 30)
		if got := sample(t, s); !got.HasMeasured || got.MeasuredWatts != 30 {
			t.Fatalf("recovery: got %+v", got)
		}
		if s.Stale() {
			t.Fatal("recovered source should not be stale")
		}
	})

	t.Run("hold", func(t *testing.T) {
		lb := NewLoopback()
		s, err := NewDelegatedSource(lb.NewReceiver(), "vm-a", WithStalePolicy(StaleHold), WithStaleAfter(1))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Open(nil); err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		send(t, lb, s, 1, 42)
		if got := sample(t, s); got.MeasuredWatts != 42 {
			t.Fatalf("fresh frame: got %+v", got)
		}
		if err := lb.Close(); err != nil { // link loss
			t.Fatal(err)
		}
		waitUntil(t, "link down", s.LinkDown)
		for i := 0; i < 3; i++ {
			if got := sample(t, s); !got.HasMeasured || got.MeasuredWatts != 42 {
				t.Fatalf("hold policy should keep the last figure, got %+v", got)
			}
		}
		if !s.Stale() {
			t.Fatal("held source is still stale")
		}
	})
}

// TestDelegatedSourceRejectsReplayedFrames pins the freshness rule: a
// redelivered or reordered frame (Seq not strictly greater) must neither
// count as accepted nor reset the staleness clock — a replaying transport
// must not make a dead host look alive.
func TestDelegatedSourceRejectsReplayedFrames(t *testing.T) {
	lb := NewLoopback()
	s, err := NewDelegatedSource(lb.NewReceiver(), "vm-a")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Open(nil); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := lb.Send(VMPowerFrame{VM: "vm-a", Seq: 5, Watts: 10}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "first frame", func() bool { return s.FrameCount() == 1 })
	// Replay of seq 5, a stale seq 4, then a genuinely fresh seq 6. The
	// loopback is FIFO, so once seq 6 is the latest the replays have been
	// processed — and must not have counted.
	for _, frame := range []VMPowerFrame{
		{VM: "vm-a", Seq: 5, Watts: 99},
		{VM: "vm-a", Seq: 4, Watts: 98},
		{VM: "vm-a", Seq: 6, Watts: 11},
	} {
		if err := lb.Send(frame); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, "fresh frame", func() bool {
		latest, ok := s.Latest()
		return ok && latest.Seq == 6
	})
	if got := s.FrameCount(); got != 2 {
		t.Fatalf("replayed frames counted: FrameCount = %d, want 2", got)
	}
	if latest, _ := s.Latest(); latest.Watts != 11 {
		t.Fatalf("latest frame %+v, want the seq-6 watts", latest)
	}
}

func TestDelegatedSourceOptionValidation(t *testing.T) {
	lb := NewLoopback()
	if _, err := NewDelegatedSource(nil, "vm"); err == nil {
		t.Fatal("nil receiver should fail")
	}
	if _, err := NewDelegatedSource(lb.NewReceiver(), ""); err == nil {
		t.Fatal("empty vm name should fail")
	}
	if _, err := NewDelegatedSource(lb.NewReceiver(), "vm", WithStaleAfter(0)); err == nil {
		t.Fatal("stale-after 0 should fail")
	}
	if _, err := ParseStalePolicy("HOLD"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseStalePolicy("nope"); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

// TestFailedMonitorConstructionClosesDelegatedSource pins the ownership
// contract: when core.New rejects its options, the bridge source handed over
// via WithVMBridge must be closed by New itself — the caller has no other
// handle to stop its receiver goroutine.
func TestFailedMonitorConstructionClosesDelegatedSource(t *testing.T) {
	lb := NewLoopback()
	s, err := NewDelegatedSource(lb.NewReceiver(), "vm-a")
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMachine(t)
	// WithSources after WithVMBridge is rejected (the bridge source must not
	// masquerade as another mode's measurement)…
	if _, err := core.New(m, testModel(), core.WithVMBridge(s), core.WithSources(source.ModeBlended)); err == nil {
		t.Fatal("WithVMBridge + WithSources should fail")
	}
	// …and the failed constructor must have closed the source.
	if err := s.Open(nil); err == nil {
		t.Fatal("the delegated source should be closed after a failed New")
	}
}

// guest is one simulated guest instance: its own machine, processes and a
// nested monitor whose machine power is the host-delegated figure.
type guest struct {
	machine *machine.Machine
	mon     *core.PowerAPI
	src     *DelegatedSource
	pids    []int
}

func newGuest(t *testing.T, lb *Loopback, vm string, levels []float64, opts ...DelegatedOption) *guest {
	t.Helper()
	m := newTestMachine(t)
	pids := spawnLevels(t, m, levels...)
	src, err := NewDelegatedSource(lb.NewReceiver(), vm, opts...)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := core.New(m, testModel(), core.WithShards(2), core.WithVMBridge(src))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mon.Shutdown)
	if mon.SourceMode() != source.ModeDelegated {
		t.Fatalf("guest mode = %v, want delegated", mon.SourceMode())
	}
	if err := mon.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}
	return &guest{machine: m, mon: mon, src: src, pids: pids}
}

// collect advances the guest's simulated clock one second and runs one round.
func (g *guest) collect(t *testing.T) core.AggregatedReport {
	t.Helper()
	if _, err := g.machine.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	r, err := g.mon.Collect()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func perPIDSum(r core.AggregatedReport) float64 {
	var sum float64
	for _, watts := range r.PerPID {
		sum += watts
	}
	return sum
}

// TestHostGuestConservationOverLoopback is the bridge's acceptance case: a
// host running the 4-shard blended pipeline delegates two pid-set VMs to two
// loopback guests. Every round, each guest's per-process estimates must sum
// to the watts the host delegated for its VM within 1e-6, and the host's VM
// rows must sum into its machine total exactly once. Then the link drops and
// each guest must apply its configured staleness policy instead of reporting
// frozen watts.
func TestHostGuestConservationOverLoopback(t *testing.T) {
	host := newTestMachine(t)
	pids := spawnLevels(t, host, 1.0, 0.7, 0.5, 0.3)
	hostMon, err := core.New(host, testModel(),
		core.WithShards(4),
		core.WithSources(source.ModeBlended),
		core.WithVMs(
			core.VMDef{Name: "vm-a", PIDs: pids[:2]},
			core.VMDef{Name: "vm-b", PIDs: pids[2:]},
		))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hostMon.Shutdown)
	if err := hostMon.AttachAllRunnable(); err != nil {
		t.Fatal(err)
	}

	lb := NewLoopback()
	pub, err := NewPublisher(hostMon, lb)
	if err != nil {
		t.Fatal(err)
	}
	guestA := newGuest(t, lb, "vm-a", []float64{0.9, 0.4})                                  // default zero policy
	guestB := newGuest(t, lb, "vm-b", []float64{0.8, 0.6, 0.2}, WithStalePolicy(StaleHold)) // hold policy

	const rounds = 4
	var lastHost core.AggregatedReport
	for round := 0; round < rounds; round++ {
		if _, err := host.Run(time.Second); err != nil {
			t.Fatal(err)
		}
		lastHost, err = hostMon.Collect()
		if err != nil {
			t.Fatal(err)
		}
		// The host's VM rows are projections of the conserved attribution:
		// together they are the whole machine total, counted once.
		vmSum := lastHost.PerVM["vm-a"] + lastHost.PerVM["vm-b"]
		if math.Abs(vmSum-lastHost.ActiveWatts) > 1e-6 {
			t.Fatalf("round %d: host VM rows sum %.9f != active %.9f", round, vmSum, lastHost.ActiveWatts)
		}
		want := uint64(round + 1)
		for _, g := range []*guest{guestA, guestB} {
			g := g
			waitUntil(t, "delegated frame", func() bool { return g.src.FrameCount() >= want })
		}
		for _, tc := range []struct {
			g  *guest
			vm string
		}{{guestA, "vm-a"}, {guestB, "vm-b"}} {
			r := tc.g.collect(t)
			delegated := lastHost.PerVM[tc.vm]
			if delegated <= 0 {
				t.Fatalf("round %d: host delegated nothing for %s", round, tc.vm)
			}
			if math.Abs(r.MeasuredWatts-delegated) > 1e-9 {
				t.Fatalf("round %d %s: guest measured %.9f != delegated %.9f", round, tc.vm, r.MeasuredWatts, delegated)
			}
			if sum := perPIDSum(r); math.Abs(sum-delegated) > 1e-6 {
				t.Fatalf("round %d %s: guest per-process sum %.9f != delegated %.9f", round, tc.vm, sum, delegated)
			}
			if r.IdleWatts != 0 {
				t.Fatalf("round %d %s: a delegated guest must not stack idle power, got %g", round, tc.vm, r.IdleWatts)
			}
		}
	}
	if pub.Published() != rounds*2 {
		t.Fatalf("publisher sent %d frames, want %d", pub.Published(), rounds*2)
	}

	// Link loss: the publisher (and its transport) goes away. Round 1 after
	// the loss is the grace round, round 2 applies the policy: the zero guest
	// collapses to zero instead of freezing, the hold guest keeps the figure.
	lastA := lastHost.PerVM["vm-a"]
	lastB := lastHost.PerVM["vm-b"]
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "guest A link down", guestA.src.LinkDown)
	waitUntil(t, "guest B link down", guestB.src.LinkDown)

	graceA, graceB := guestA.collect(t), guestB.collect(t)
	if math.Abs(perPIDSum(graceA)-lastA) > 1e-6 {
		t.Fatalf("grace round: guest A sum %.9f != last delegated %.9f", perPIDSum(graceA), lastA)
	}
	staleA, staleB := guestA.collect(t), guestB.collect(t)
	if sum := perPIDSum(staleA); sum != 0 || staleA.MeasuredWatts != 0 {
		t.Fatalf("zero policy: guest A should report zero after link loss, got sum %.9f measured %.9f", sum, staleA.MeasuredWatts)
	}
	if sum := perPIDSum(staleB); math.Abs(sum-lastB) > 1e-6 {
		t.Fatalf("hold policy: guest B should hold %.9f, got %.9f", lastB, sum)
	}
	if math.Abs(perPIDSum(graceB)-lastB) > 1e-6 {
		t.Fatalf("grace round: guest B sum %.9f != last delegated %.9f", perPIDSum(graceB), lastB)
	}
	if !guestA.src.Stale() || !guestB.src.Stale() {
		t.Fatal("both guests should report stale after link loss")
	}
}

// TestTCPBridgeEndToEnd drives frames over the TCP/JSON-lines transport: a
// publisher listening on a loopback socket, a dialed receiver feeding a
// delegated source, then link loss when the publisher closes.
func TestTCPBridgeEndToEnd(t *testing.T) {
	pub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()
	recv, err := DialTCPWithRetry(pub.Addr().String(), 5, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewDelegatedSource(recv, "vm-tcp", WithStaleAfter(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Open(nil); err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	waitUntil(t, "connection", func() bool { return pub.Connections() == 1 })

	if err := pub.Send(VMPowerFrame{VM: "vm-tcp", Seq: 1, Timestamp: time.Second, Watts: 17.25}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "frame over tcp", func() bool { return src.FrameCount() >= 1 })
	got, ok := src.Latest()
	if !ok || got.Watts != 17.25 || got.Seq != 1 || got.Timestamp != time.Second {
		t.Fatalf("got %+v", got)
	}
	sample, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !sample.HasMeasured || sample.MeasuredWatts != 17.25 {
		t.Fatalf("sample %+v", sample)
	}
	if err := pub.Close(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "tcp link down", src.LinkDown)
	stale, err := src.Sample(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stale.HasMeasured {
		t.Fatalf("zero policy with stale-after 1 should drop the measurement, got %+v", stale)
	}
}
