package vmbridge

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"powerapi/internal/core"
	"powerapi/internal/obs"
	"powerapi/internal/target"
)

// NodePublisher is the daemon side of the fleet tier: a subscriber on the
// local monitor that turns every sampling round into ONE frame describing the
// whole node — VM set to the node's name, Watts the node's total estimate,
// and Rows the per-target breakdown a collector rolls up fleet-wide. It
// reuses the VM bridge's frame, transport and codec machinery; a collector
// tells node frames from VM-delegation frames by the presence of rows.
//
// Unlike the VM bridge's Publisher it needs no VM definitions — every monitor
// has a total and a per-cgroup rollup to report.
type NodePublisher struct {
	node   string
	sub    *core.Subscription
	tr     Transport
	tracer *obs.Tracer
	wg     sync.WaitGroup

	seq       atomic.Uint64
	published atomic.Uint64
	sendErrs  atomic.Uint64
	lastErr   atomic.Value // error

	// noProvenance suppresses the emit-time stamps — the escape hatch that
	// lets a daemon emulate a pre-provenance peer (mixed-fleet testing, or a
	// consumer that chokes on the new JSON fields).
	noProvenance atomic.Bool

	closeOnce sync.Once
}

// SetProvenance enables or disables the provenance stamps (EmitMono, Round,
// TraceID) on the publisher's frames. Stamps are on by default; disabling them
// makes the publisher wire-identical to a pre-provenance daemon.
func (p *NodePublisher) SetProvenance(on bool) { p.noProvenance.Store(!on) }

// NewNodePublisher subscribes a node-frame publisher to the monitor's report
// fanout and starts streaming one frame per round. The publisher owns the
// transport: Close shuts both the subscription and the transport down.
func NewNodePublisher(mon *core.PowerAPI, tr Transport, node string) (*NodePublisher, error) {
	if mon == nil {
		return nil, errors.New("vmbridge: nil monitor")
	}
	if tr == nil {
		return nil, errors.New("vmbridge: nil transport")
	}
	if !target.Node(node).Valid() {
		return nil, fmt.Errorf("vmbridge: invalid node name %q", node)
	}
	sub, err := mon.Subscribe(core.SubscribeOptions{Name: "fleet-node-publisher", Policy: core.Block})
	if err != nil {
		return nil, fmt.Errorf("vmbridge: subscribe: %w", err)
	}
	p := &NodePublisher{node: node, sub: sub, tr: tr, tracer: mon.Tracer()}
	p.wg.Add(1)
	go p.run()
	return p, nil
}

func (p *NodePublisher) run() {
	defer p.wg.Done()
	for report := range p.sub.C() {
		ts := report.Timestamp
		traceStart := p.tracer.Now()
		// One frame per round. Rows carry the cgroup rollup (the unit the
		// collector aggregates across nodes) in deterministic sorted order;
		// the node total rides in Watts, so a collector ingesting only
		// headers still gets per-node and fleet watts right. Rows and batch
		// are freshly allocated per round because the transport retains them
		// until written.
		rows := make([]TargetRow, 0, len(report.PerCgroup))
		for path, w := range report.PerCgroup {
			rows = append(rows, TargetRow{Key: "cgroup:" + path, Watts: w})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Key < rows[j].Key })
		seq := p.seq.Add(1)
		frame := VMPowerFrame{
			VM:             p.node,
			Seq:            seq,
			Timestamp:      report.Timestamp,
			Watts:          report.TotalWatts,
			HostTotalWatts: report.TotalWatts,
			SourceMode:     report.SourceMode,
			Rows:           rows,
		}
		if !p.noProvenance.Load() {
			// One frame per round, so the round number IS the frame sequence.
			// EmitMono is the daemon's tracer clock: the collector differences
			// it against arrival stamps for lag/skew estimates.
			frame.EmitMono = time.Duration(p.tracer.Now())
			frame.Round = seq
			frame.TraceID = FrameTraceID(p.node, seq)
		}
		report.Release()
		if err := p.tr.SendBatch([]VMPowerFrame{frame}); err != nil {
			p.sendErrs.Add(1)
			p.lastErr.Store(err)
		} else {
			p.published.Add(1)
		}
		p.tracer.Record(ts, obs.StagePublish, 0, traceStart, p.tracer.Now())
	}
}

// Node returns the node name the publisher stamps on its frames.
func (p *NodePublisher) Node() string { return p.node }

// Published returns how many node frames were handed to the transport so far.
func (p *NodePublisher) Published() uint64 { return p.published.Load() }

// SendErrors returns how many frames the transport refused.
func (p *NodePublisher) SendErrors() uint64 { return p.sendErrs.Load() }

// LastError returns the most recent transport error (nil if none).
func (p *NodePublisher) LastError() error {
	if v := p.lastErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close detaches the publisher from the monitor and closes the transport. It
// is idempotent and safe while rounds are in flight.
func (p *NodePublisher) Close() error {
	var err error
	p.closeOnce.Do(func() {
		p.sub.Close()
		p.wg.Wait()
		err = p.tr.Close()
	})
	return err
}
