package vmbridge

import (
	"bytes"
	"net"
	"reflect"
	"testing"
	"time"
)

// provenanceBatch is testBatch with emit-time provenance stamped the way
// Publisher.publish does: one shared round/emit/trace context per batch.
func provenanceBatch() []VMPowerFrame {
	batch := testBatch()
	for i := range batch {
		batch[i].EmitMono = 5 * time.Second
		batch[i].Round = 9
		batch[i].TraceID = FrameTraceID("vmbridge", 9)
	}
	return batch
}

// TestProvenanceVersionedRoundTrip pins the version-2 layout: stamps survive
// an encode/decode round trip, and the same frames encoded at version 1 decode
// cleanly with the stamps dropped — the view an old peer gets.
func TestProvenanceVersionedRoundTrip(t *testing.T) {
	batch := provenanceBatch()

	wire := AppendBinaryBatchVersion(nil, batch, BinaryVersionProvenance)
	payload, version, err := SplitBinaryMessage(wire)
	if err != nil {
		t.Fatal(err)
	}
	if version != BinaryVersionProvenance {
		t.Fatalf("v2 message split as version %d", version)
	}
	got, err := decodeBinaryFramesVersion(payload, version, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, batch) {
		t.Fatalf("v2 round trip mismatch:\n got %+v\nwant %+v", got, batch)
	}

	// The same batch at version 1 is byte-identical to a stamp-free encode:
	// provenance must never leak into the layout an old peer negotiated.
	v1 := AppendBinaryBatchVersion(nil, batch, BinaryVersionBase)
	plain := AppendBinaryBatch(nil, testBatch())
	if !bytes.Equal(v1, plain) {
		t.Fatal("version-1 encode of stamped frames differs from a stamp-free encode")
	}
	payload, version, err = SplitBinaryMessage(v1)
	if err != nil || version != BinaryVersionBase {
		t.Fatalf("v1 split: version=%d err=%v", version, err)
	}
	got, err = decodeBinaryFramesVersion(payload, version, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].EmitMono != 0 || got[i].Round != 0 || got[i].TraceID != 0 {
			t.Fatalf("v1 frame %d decoded with provenance: %+v", i, got[i])
		}
	}
}

// TestSplitBinaryMessageRejectsMalformed pins the in-memory validator used by
// collector.FeedPayload: truncation, bad magic, and a length field that
// disagrees with the buffer are all errors, never a mis-sliced payload.
func TestSplitBinaryMessageRejectsMalformed(t *testing.T) {
	wire := AppendBinaryBatchVersion(nil, provenanceBatch(), BinaryVersionProvenance)
	if _, _, err := SplitBinaryMessage(wire[:BinaryMessageHeader-1]); err == nil {
		t.Fatal("short header accepted")
	}
	if _, _, err := SplitBinaryMessage(wire[:len(wire)-1]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	bad := append([]byte(nil), wire...)
	bad[3] = '9'
	if _, _, err := SplitBinaryMessage(bad); err == nil {
		t.Fatal("unknown magic accepted")
	}
}

// TestProvenanceNegotiation is the new-peer path end to end: DialTCPCodec
// sends hello plus the provenance capability, the publisher settles on wire
// version 2, and the receiver's frames carry the stamps intact.
func TestProvenanceNegotiation(t *testing.T) {
	pub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	recv, err := DialTCPCodec(pub.Addr().String(), CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer recv.Close()

	waitUntil(t, "provenance negotiation", func() bool {
		stats := pub.ConnStats()
		return len(stats) == 1 && stats[0].Codec == CodecBinary && stats[0].WireVersion == BinaryVersionProvenance
	})

	batch := provenanceBatch()
	if err := pub.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		select {
		case got := <-recv.Frames():
			if !reflect.DeepEqual(got, batch[i]) {
				t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got, batch[i])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d never arrived", i)
		}
	}
	if recv.DecodeErrors() != 0 {
		t.Fatalf("receiver counted %d decode errors", recv.DecodeErrors())
	}
}

// TestOldPeerGetsBaseVersion is the downgrade path: a receiver that writes
// only the codec hello (an old binary peer, pre-provenance) negotiates wire
// version 1 and decodes every message cleanly — stamps dropped, rows intact.
func TestOldPeerGetsBaseVersion(t *testing.T) {
	pub, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	// Dial raw and speak exactly what an old peer speaks: the hello, nothing
	// after it.
	conn, err := net.Dial("tcp", pub.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := RequestBinary(conn); err != nil {
		t.Fatal(err)
	}

	waitUntil(t, "base-version negotiation", func() bool {
		stats := pub.ConnStats()
		return len(stats) == 1 && stats[0].Codec == CodecBinary && stats[0].WireVersion == BinaryVersionBase
	})

	batch := provenanceBatch()
	if err := pub.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	payload, version, err := ReadBinaryMessageVersion(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if version != BinaryVersionBase {
		t.Fatalf("old peer received wire version %d", version)
	}
	got, err := decodeBinaryFramesVersion(payload, version, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := testBatch() // stamps dropped on the wire
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("old peer decode mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestFrameTraceIDStable pins the trace-id derivation: deterministic for a
// (publisher, round) pair, distinct across publishers and rounds, never zero
// for real inputs — a collector joins rounds across processes on these.
func TestFrameTraceIDStable(t *testing.T) {
	a := FrameTraceID("node-1", 7)
	if a != FrameTraceID("node-1", 7) {
		t.Fatal("trace id is not deterministic")
	}
	if a == FrameTraceID("node-2", 7) {
		t.Fatal("trace id ignores the publisher name")
	}
	if a == FrameTraceID("node-1", 8) {
		t.Fatal("trace id ignores the round")
	}
	if a == 0 {
		t.Fatal("trace id collapsed to zero")
	}
}
