package vmbridge

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"powerapi/internal/source"
	"powerapi/internal/target"
)

// StalePolicy tells a DelegatedSource what to report once the delegated
// frames stop arriving (link loss, a paused host, a migrating VM): frozen
// watts must never masquerade as live measurements.
type StalePolicy int

const (
	// StaleZero reports no measurement once stale: the guest pipeline's
	// attributed total collapses to zero until frames resume, so consumers
	// can tell "the host went quiet" from "the VM idles at its last figure".
	// This is the default.
	StaleZero StalePolicy = iota
	// StaleHold keeps reporting the last delegated watts while stale — the
	// smoother choice for billing-style consumers that prefer a held figure
	// over a cliff, at the price of hiding the outage from the estimates.
	StaleHold
)

// String implements fmt.Stringer.
func (p StalePolicy) String() string {
	switch p {
	case StaleZero:
		return "zero"
	case StaleHold:
		return "hold"
	default:
		return fmt.Sprintf("StalePolicy(%d)", int(p))
	}
}

// Valid reports whether p is a defined policy.
func (p StalePolicy) Valid() bool { return p == StaleZero || p == StaleHold }

// ParseStalePolicy resolves a policy name ("zero", "hold", case-insensitive).
func ParseStalePolicy(s string) (StalePolicy, error) {
	switch {
	case strings.EqualFold(s, StaleZero.String()):
		return StaleZero, nil
	case strings.EqualFold(s, StaleHold.String()):
		return StaleHold, nil
	default:
		return 0, fmt.Errorf("vmbridge: unknown stale policy %q (want zero|hold)", s)
	}
}

// DefaultStaleAfter is how many consecutive sampling rounds without a fresh
// frame a DelegatedSource tolerates before applying its staleness policy. One
// round of slack absorbs the host and guest ticking out of phase; the second
// miss means the link is genuinely quiet.
const DefaultStaleAfter = 2

// DelegatedOption customises a DelegatedSource.
type DelegatedOption func(*DelegatedSource) error

// WithStalePolicy selects what the source reports once frames stop arriving
// (StaleZero by default).
func WithStalePolicy(p StalePolicy) DelegatedOption {
	return func(s *DelegatedSource) error {
		if !p.Valid() {
			return fmt.Errorf("vmbridge: invalid stale policy %v", p)
		}
		s.policy = p
		return nil
	}
}

// WithStaleAfter overrides how many consecutive rounds without a fresh frame
// the source tolerates before its policy applies (DefaultStaleAfter).
func WithStaleAfter(rounds int) DelegatedOption {
	return func(s *DelegatedSource) error {
		if rounds < 1 {
			return fmt.Errorf("vmbridge: stale-after must be at least 1 round, got %d", rounds)
		}
		s.staleAfter = rounds
		return nil
	}
}

// DelegatedSource is the guest side of the bridge: a machine-scope
// source.Source whose "measured machine watts" is the most recent power
// figure the host delegated for this VM. Plugged into a nested PowerAPI
// instance (core.WithVMBridge), the guest pipeline attributes the delegated
// total across the guest's processes exactly as the blended mode attributes a
// RAPL measurement — conserving the host's figure down to per-process rows.
//
// The source owns its Receiver: frames are consumed by a background goroutine
// started at Open, the newest frame for the source's VM wins, and Close (the
// pipeline's source teardown) closes the receiver. Staleness is detected per
// sampling round: after staleAfter consecutive Samples without a fresh frame
// the configured policy applies — StaleZero stops reporting a measurement,
// StaleHold keeps the last figure.
type DelegatedSource struct {
	recv       Receiver
	vm         string
	policy     StalePolicy
	staleAfter int

	mu          sync.Mutex
	latest      VMPowerFrame
	hasFrame    bool
	fresh       bool // a new frame arrived since the previous Sample
	staleRounds int
	linkDown    bool
	opened      bool
	closed      bool

	frames atomic.Uint64 // frames accepted for this VM
	wg     sync.WaitGroup
}

// NewDelegatedSource creates the guest-side source consuming frames for the
// named VM from recv. The source takes ownership of the receiver.
func NewDelegatedSource(recv Receiver, vm string, opts ...DelegatedOption) (*DelegatedSource, error) {
	if recv == nil {
		return nil, errors.New("vmbridge: nil receiver")
	}
	if vm == "" {
		return nil, errors.New("vmbridge: empty vm name")
	}
	s := &DelegatedSource{recv: recv, vm: vm, policy: StaleZero, staleAfter: DefaultStaleAfter}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Name implements source.Source.
func (s *DelegatedSource) Name() string { return "delegated" }

// Scope implements source.Source: the delegated figure is the guest machine's
// power.
func (s *DelegatedSource) Scope() source.Scope { return source.ScopeMachine }

// VMName returns the VM whose frames the source consumes.
func (s *DelegatedSource) VMName() string { return s.vm }

// Policy returns the configured staleness policy.
func (s *DelegatedSource) Policy() StalePolicy { return s.policy }

// Open implements source.Source (machine scope: targets are ignored). It
// starts the frame-consuming goroutine.
func (s *DelegatedSource) Open([]target.Target) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("vmbridge: delegated source is closed")
	}
	if s.opened {
		return nil
	}
	s.opened = true
	s.wg.Add(1)
	go s.consume()
	return nil
}

// consume drains the receiver, keeping the newest frame of this VM. The
// strict Seq comparison rejects replays and reordered frames — a redelivered
// last frame must not read as "the host is alive" and reset the staleness
// counter. When the frame channel closes the link is down: no fresh frame
// can arrive, so the staleness policy will take over within staleAfter
// rounds.
func (s *DelegatedSource) consume() {
	defer s.wg.Done()
	for frame := range s.recv.Frames() {
		if frame.VM != s.vm {
			continue
		}
		s.mu.Lock()
		if !s.hasFrame || frame.Seq > s.latest.Seq {
			s.latest = frame
			s.hasFrame = true
			s.fresh = true
			s.frames.Add(1)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.linkDown = true
	s.mu.Unlock()
}

// Sample implements source.Source. A fresh frame since the previous Sample is
// the VM's measured power for the round; without one the source holds the
// last figure for up to staleAfter-1 rounds and then applies its policy.
// Before the first frame there is nothing delegated yet and no measurement is
// reported.
func (s *DelegatedSource) Sample(context.Context) (source.Sample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return source.Sample{}, errors.New("vmbridge: delegated source is closed")
	}
	if !s.opened {
		return source.Sample{}, errors.New("vmbridge: delegated source is not open")
	}
	if s.fresh {
		s.fresh = false
		s.staleRounds = 0
		return source.Sample{MeasuredWatts: s.latest.Watts, HasMeasured: true}, nil
	}
	if !s.hasFrame {
		return source.Sample{}, nil
	}
	s.staleRounds++
	if s.staleRounds < s.staleAfter || s.policy == StaleHold {
		return source.Sample{MeasuredWatts: s.latest.Watts, HasMeasured: true}, nil
	}
	return source.Sample{}, nil
}

// Stale reports whether the source has missed enough rounds for its policy to
// be in effect.
func (s *DelegatedSource) Stale() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hasFrame && s.staleRounds >= s.staleAfter
}

// LinkDown reports whether the receiver's frame stream has ended.
func (s *DelegatedSource) LinkDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.linkDown
}

// Latest returns the most recent frame accepted for this VM (false before the
// first one).
func (s *DelegatedSource) Latest() (VMPowerFrame, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest, s.hasFrame
}

// FrameCount returns how many frames of this VM the source has accepted.
func (s *DelegatedSource) FrameCount() uint64 { return s.frames.Load() }

// Close implements source.Source: the receiver is closed and the consuming
// goroutine drained. Further calls fail; Close itself is idempotent.
func (s *DelegatedSource) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	opened := s.opened
	s.mu.Unlock()
	err := s.recv.Close()
	if opened {
		s.wg.Wait()
	}
	return err
}
