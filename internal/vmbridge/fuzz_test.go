package vmbridge

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"
)

// fuzzSeedFrames is a representative batch covering both bridge shapes: a
// host↔guest frame (no rows) and a fleet frame (node name + per-target rows).
func fuzzSeedFrames() []VMPowerFrame {
	return []VMPowerFrame{
		{VM: "vm-web", Seq: 7, Timestamp: 3 * time.Second, Watts: 12.5, HostTotalWatts: 80, SourceMode: "blended"},
		{VM: "node-3", Seq: 41, Timestamp: 9 * time.Second, Watts: 55.25, SourceMode: "rapl", Rows: []TargetRow{
			{Key: "cgroup:web/api", Watts: 30.5},
			{Key: "machine", Watts: 24.75},
		}},
	}
}

// FuzzDecodeFrame exercises the JSON-lines receive path: one line, one frame,
// exactly as TCPReceiver.readLoop unmarshals it. A decode error is fine (the
// read loop counts it and resyncs on the next newline); a panic is not.
func FuzzDecodeFrame(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		line, err := json.Marshal(frame)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(line)
	}
	f.Add([]byte(`{"vm":"a","seq":-1}`))
	f.Add([]byte(`{"vm":"a","rows":[{"key":"x","watts":1e309}]}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, line []byte) {
		var frame VMPowerFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return
		}
		// A frame that decoded must re-encode; Unmarshal rejects the
		// non-finite floats that would make Marshal fail.
		if _, err := json.Marshal(frame); err != nil {
			t.Fatalf("decoded frame does not re-encode: %v", err)
		}
	})
}

// FuzzDecodeBatch exercises the binary codec's payload walk: the zero-copy
// streaming decoder and the owning frame decoder must agree, never panic, and
// never let a hostile header drive allocation past the payload itself.
func FuzzDecodeBatch(f *testing.F) {
	msg := AppendBinaryBatch(nil, fuzzSeedFrames())
	f.Add(msg[BinaryMessageHeader:]) // well-formed payload
	f.Add(msg[BinaryMessageHeader : len(msg)-5])
	f.Add([]byte{})
	f.Add(hostileRowsPayload())
	f.Fuzz(func(t *testing.T, payload []byte) {
		var streamRows int
		streamErr := DecodeBinaryBatch(payload,
			func(h FrameHeader) bool { return true },
			func(key []byte, watts float64) { streamRows++ })
		frames, ownErr := decodeBinaryFrames(payload, nil)
		if (streamErr == nil) != (ownErr == nil) {
			t.Fatalf("decoders disagree: stream=%v own=%v", streamErr, ownErr)
		}
		if streamErr != nil {
			return
		}
		var ownRows int
		for i := range frames {
			ownRows += len(frames[i].Rows)
		}
		if ownRows != streamRows {
			t.Fatalf("row counts disagree: stream=%d own=%d", streamRows, ownRows)
		}
		// A payload that decoded must survive a re-encode/re-decode round
		// trip unchanged. Equality is checked on the re-encoded bytes, not the
		// structs: floats round-trip as raw bits, and a NaN watts value is
		// legal on the wire but never compares equal to itself.
		enc := AppendBinaryBatch(nil, frames)[BinaryMessageHeader:]
		again, err := decodeBinaryFrames(enc, nil)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		enc2 := AppendBinaryBatch(nil, again)[BinaryMessageHeader:]
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the encoding:\n  first:  %x\n  second: %x", enc, enc2)
		}
	})
}

// FuzzDecodeBatchV2 is FuzzDecodeBatch for the provenance wire version: the
// streaming and owning decoders must agree on version-2 payloads, stamps must
// survive the owning decode, and a decodable payload must round-trip to the
// same bytes through a version-2 re-encode.
func FuzzDecodeBatchV2(f *testing.F) {
	frames := fuzzSeedFrames()
	for i := range frames {
		frames[i].EmitMono = time.Duration(1+i) * time.Second
		frames[i].Round = uint64(40 + i)
		frames[i].TraceID = FrameTraceID(frames[i].VM, frames[i].Round)
	}
	msg := AppendBinaryBatchVersion(nil, frames, BinaryVersionProvenance)
	f.Add(msg[BinaryMessageHeader:]) // well-formed v2 payload
	f.Add(msg[BinaryMessageHeader : len(msg)-5])
	// A version-1 payload read as version 2: the decoder must reject or
	// misparse it loudly, never panic.
	f.Add(AppendBinaryBatch(nil, fuzzSeedFrames())[BinaryMessageHeader:])
	f.Add([]byte{})
	f.Add(hostileRowsPayload())
	f.Fuzz(func(t *testing.T, payload []byte) {
		var streamRows int
		streamErr := DecodeBinaryBatchVersion(payload, BinaryVersionProvenance,
			func(h FrameHeader) bool { return true },
			func(key []byte, watts float64) { streamRows++ })
		frames, ownErr := decodeBinaryFramesVersion(payload, BinaryVersionProvenance, nil)
		if (streamErr == nil) != (ownErr == nil) {
			t.Fatalf("decoders disagree: stream=%v own=%v", streamErr, ownErr)
		}
		if streamErr != nil {
			return
		}
		var ownRows int
		for i := range frames {
			ownRows += len(frames[i].Rows)
		}
		if ownRows != streamRows {
			t.Fatalf("row counts disagree: stream=%d own=%d", streamRows, ownRows)
		}
		enc := AppendBinaryBatchVersion(nil, frames, BinaryVersionProvenance)[BinaryMessageHeader:]
		again, err := decodeBinaryFramesVersion(enc, BinaryVersionProvenance, nil)
		if err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
		enc2 := AppendBinaryBatchVersion(nil, again, BinaryVersionProvenance)[BinaryMessageHeader:]
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the encoding:\n  first:  %x\n  second: %x", enc, enc2)
		}
	})
}

// hostileRowsPayload builds a tiny payload whose one frame claims 2^32 rows —
// the input that made decodeBinaryFrames presize gigabytes before the row
// count was bounded by the remaining payload.
func hostileRowsPayload() []byte {
	p := binary.AppendUvarint(nil, 1)          // one frame
	p = append(p, 0)                           // empty VM name
	p = binary.AppendUvarint(p, 1)             // seq
	p = binary.AppendUvarint(p, 0)             // timestamp
	p = append(p, make([]byte, 16)...)         // watts, hostTotalWatts
	p = append(p, 0)                           // empty source mode
	p = binary.AppendUvarint(p, uint64(1)<<32) // claimed row count
	return p
}

// TestDecodeBinaryFramesRowsBound pins the fix for the unbounded presize: a
// frame header claiming more rows than the remaining bytes could hold is
// malformed, and rejecting it costs no allocation proportional to the claim.
func TestDecodeBinaryFramesRowsBound(t *testing.T) {
	payload := hostileRowsPayload()
	if _, err := decodeBinaryFrames(payload, nil); err == nil {
		t.Fatal("payload claiming 2^32 rows in a few bytes decoded without error")
	}
	err := DecodeBinaryBatch(payload, func(FrameHeader) bool { return true }, nil)
	if err == nil {
		t.Fatal("streaming decoder accepted a row count the payload cannot hold")
	}
	// The boundary itself still decodes: exactly as many rows as fit.
	frames := []VMPowerFrame{{VM: "n", Rows: []TargetRow{{Key: "", Watts: 1}, {Key: "", Watts: 2}}}}
	payload = AppendBinaryBatch(nil, frames)[BinaryMessageHeader:]
	got, err := decodeBinaryFrames(payload, nil)
	if err != nil || len(got) != 1 || len(got[0].Rows) != 2 {
		t.Fatalf("minimal-size rows failed to decode: frames=%v err=%v", got, err)
	}
}

// TestReadBinaryMessageHostileLength pins the header length bound: a header
// claiming a payload past the limit errors without allocating it.
func TestReadBinaryMessageHostileLength(t *testing.T) {
	var head [BinaryMessageHeader]byte
	copy(head[:], binaryMagic[:])
	binary.LittleEndian.PutUint32(head[4:], maxBinaryPayload+1)
	if _, err := ReadBinaryMessage(bytes.NewReader(head[:]), nil); err == nil {
		t.Fatal("over-limit payload length accepted")
	}
}
