// Package powerapi is the public facade of the PowerAPI reproduction: a
// software-defined, architecture-independent middleware toolkit that
// estimates the power consumption of individual processes in real time from
// hardware performance counters, as described in
//
//	"Improving the Energy Efficiency of Software Systems for Multi-Core
//	Architectures", Colmant, Rouvoy, Seinturier — Middleware 2014 Doctoral
//	Symposium.
//
// The facade wires together the building blocks a user needs:
//
//   - a simulated multi-core host (NewMachine) standing in for the physical
//     testbed, complete with DVFS, SMT, C-states, a perf-like counter
//     subsystem and a PowerSpy-like wall power meter;
//   - the calibration pipeline (Calibrate) that learns one power formula per
//     DVFS frequency by stressing the processor and regressing counter rates
//     against measured power (the paper's Figure 1);
//   - the actor-based monitoring middleware (NewMonitor) — Sensor, Formula,
//     Aggregator, Reporter — that attributes watts to PIDs at run time (the
//     paper's Figure 2). The Sensor and Formula stages scale out to N
//     PID-partitioned shards (WithShards): a consistent-hash router spreads
//     the monitored PIDs over the Sensor pool, every sampling tick fans out
//     to all shards, and each shard emits one batched report whose partial
//     estimates the Aggregator merges back into a single round report;
//   - workload generators (CPUStress, MemoryStress, SPECjbb) used both for
//     calibration and for the paper's evaluation;
//   - the experiment drivers (Experiments*) that regenerate every table and
//     figure of the paper.
//
// See examples/ for runnable end-to-end programs.
package powerapi

import (
	"io"
	"log/slog"
	"time"

	"powerapi/internal/advisor"
	"powerapi/internal/calibration"
	"powerapi/internal/cgroup"
	"powerapi/internal/core"
	"powerapi/internal/cpu"
	"powerapi/internal/experiments"
	"powerapi/internal/history"
	"powerapi/internal/httpapi"
	"powerapi/internal/machine"
	"powerapi/internal/model"
	"powerapi/internal/obs"
	"powerapi/internal/powermeter"
	"powerapi/internal/sched"
	"powerapi/internal/source"
	"powerapi/internal/target"
	"powerapi/internal/vmbridge"
	"powerapi/internal/workload"
)

// Re-exported types. The facade deliberately uses type aliases so that values
// flow freely between the public API and the internal packages used by the
// command-line tools.
type (
	// Spec describes a processor (the paper's Table 1).
	Spec = cpu.Spec
	// Governor selects the DVFS frequency-scaling policy.
	Governor = cpu.Governor
	// MachineConfig assembles a simulated host.
	MachineConfig = machine.Config
	// Machine is a running simulated host.
	Machine = machine.Machine
	// Generator produces workload demand over time.
	Generator = workload.Generator
	// SPECjbbConfig parameterises the SPECjbb2013-like workload.
	SPECjbbConfig = workload.SPECjbbConfig
	// PowerModel is a learned CPU energy profile (idle constant + one linear
	// formula per DVFS frequency).
	PowerModel = model.CPUPowerModel
	// CalibrationOptions tunes the Figure 1 learning process.
	CalibrationOptions = calibration.Options
	// CalibrationReport describes a completed calibration.
	CalibrationReport = calibration.Report
	// Monitor is the PowerAPI middleware pipeline attached to a machine.
	Monitor = core.PowerAPI
	// MonitorReport is one aggregated power estimation round.
	MonitorReport = core.AggregatedReport
	// PowerSpy is the simulated wall-socket power meter.
	PowerSpy = powermeter.PowerSpy
	// PowerSpyConfig tunes the simulated power meter.
	PowerSpyConfig = powermeter.PowerSpyConfig
	// ExperimentScale bundles the evaluation dimensions.
	ExperimentScale = experiments.Scale
	// MonitorOption customises a Monitor (grouping dimension, extra
	// reporters, monitored events, sensing sources).
	MonitorOption = core.Option
	// SourceMode selects the sensing backends of a Monitor (hpc counters,
	// RAPL energy, procfs fallback, blended attribution).
	SourceMode = source.Mode
	// SensorSource is a pluggable sensing backend of the monitoring
	// pipeline.
	SensorSource = source.Source
	// Target identifies one monitoring target: a process, a control group
	// or the machine itself. Every layer of the pipeline is keyed by
	// targets, so a Monitor attributes power to containers as readily as to
	// PIDs.
	Target = target.Target
	// TargetKind classifies what a Target identifies.
	TargetKind = target.Kind
	// CgroupHierarchy is a tree of control groups over process IDs, the
	// container/slice structure a Monitor rolls power up along.
	CgroupHierarchy = cgroup.Hierarchy
	// CgroupSpec is a parsed control-group specification such as
	// "web=1,2,3;db=4" (see ParseCgroupSpec).
	CgroupSpec = cgroup.Spec
	// EnergyAccumulator integrates per-process power into per-process energy.
	EnergyAccumulator = core.EnergyAccumulator
	// Advisor turns monitoring rounds into energy-leak findings.
	Advisor = advisor.Advisor
	// AdvisorFinding is one piece of advice about a monitored process.
	AdvisorFinding = advisor.Finding
	// Subscription is one live consumer of a Monitor's report fanout
	// (Monitor.Subscribe): a per-subscriber channel with filters, decimation,
	// an explicit backpressure policy and drop/delivery counters.
	Subscription = core.Subscription
	// SubscribeOptions configures a Subscription (policy, buffer, filters,
	// decimation). The zero value is a conflating, unfiltered subscription.
	SubscribeOptions = core.SubscribeOptions
	// BackpressurePolicy tells the fanout what to do when a subscriber lags:
	// Conflate, DropOldest or Block.
	BackpressurePolicy = core.BackpressurePolicy
	// QueryOptions selects and aggregates retained history (Monitor.Query).
	QueryOptions = core.QueryOptions
	// TargetStats is one per-target row of a Monitor.Query result.
	TargetStats = core.TargetStats
	// HistoryStore is the per-target retained-history ring-buffer store a
	// Monitor fills when WithHistory is enabled.
	HistoryStore = history.Store
	// HistorySample is one retained observation of one target.
	HistorySample = history.Sample
	// APIServer serves a Monitor over HTTP: Prometheus /metrics plus the
	// JSON query/attach/detach API (see NewAPIServer).
	APIServer = httpapi.Server
	// VMDef designates a named virtual machine on the host: a cgroup subtree
	// or an explicit PID set whose power the Monitor rolls up per round
	// (MonitorReport.PerVM) and the VM bridge delegates to a nested guest
	// instance.
	VMDef = core.VMDef
	// VMPowerFrame is one delegated power figure on the VM bridge: the
	// host-side estimate of one VM's draw for one sampling round.
	VMPowerFrame = vmbridge.VMPowerFrame
	// VMBridgeTransport is the host-side half of a VM bridge (Send frames).
	VMBridgeTransport = vmbridge.Transport
	// VMBridgeReceiver is the guest-side half of a VM bridge (a frame
	// stream).
	VMBridgeReceiver = vmbridge.Receiver
	// VMPublisher streams a host Monitor's per-VM power over a bridge
	// transport, one frame per VM per sampling round (see NewVMPublisher).
	VMPublisher = vmbridge.Publisher
	// DelegatedSource is the guest side of the bridge: a machine-scope
	// sensor source whose measured watts is the latest host-delegated figure
	// (see NewDelegatedSource and WithVMBridge).
	DelegatedSource = vmbridge.DelegatedSource
	// DelegatedSourceOption customises a DelegatedSource (staleness policy
	// and tolerance).
	DelegatedSourceOption = vmbridge.DelegatedOption
	// StalePolicy tells a DelegatedSource what to report once delegated
	// frames stop arriving: StaleZero or StaleHold.
	StalePolicy = vmbridge.StalePolicy
	// LoopbackBridge is the in-process bridge transport for tests, examples
	// and simulated guests (see NewLoopbackBridge).
	LoopbackBridge = vmbridge.Loopback
	// TCPBridgePublisher is the TCP/JSON-lines bridge transport a host
	// serves (see ListenVMBridge).
	TCPBridgePublisher = vmbridge.TCPPublisher
	// TCPBridgeReceiver consumes a TCP bridge's frame stream on the guest
	// side (see DialVMBridge).
	TCPBridgeReceiver = vmbridge.TCPReceiver
	// SubscriptionInfo is one live subscription's diagnostic snapshot
	// (Monitor.SubscriptionStats): name, policy, delivered/dropped counters.
	SubscriptionInfo = core.SubscriptionInfo
	// MonitorStats is the one-call observability snapshot (Monitor.Stats):
	// pipeline gauges, report-pool traffic, per-stage latency distributions
	// and the self-power figures — the same collector every HTTP surface
	// renders from, available to headless deployments.
	MonitorStats = core.MonitorStats
	// StageStats is one pipeline stage's latency summary (count, quantiles,
	// cumulative buckets) inside MonitorStats.
	StageStats = obs.StageStats
	// RoundTrace is the per-stage timeline of one traced sampling round
	// (Monitor.Tracer().Rounds(), also served at /api/v1/debug/rounds).
	RoundTrace = obs.RoundView
	// StageSpan is one stage's span within a RoundTrace: first/last instants
	// relative to round begin, busy time and slowest-shard attribution.
	StageSpan = obs.SpanView
)

// Backpressure policies (see SubscribeOptions.Policy).
const (
	// Conflate keeps only the latest report: a consumer always observes the
	// most recent round, never a stale backlog. The default.
	Conflate = core.Conflate
	// DropOldest buffers up to SubscribeOptions.Buffer reports and evicts
	// the oldest unread one when a new round arrives.
	DropOldest = core.DropOldest
	// Block makes the pipeline wait for the subscriber: every round is
	// delivered exactly once. Close (or keep consuming) Block subscriptions,
	// an abandoned one stalls monitoring.
	Block = core.Block
)

// DVFS governors.
const (
	GovernorPerformance = cpu.GovernorPerformance
	GovernorPowersave   = cpu.GovernorPowersave
	GovernorOndemand    = cpu.GovernorOndemand
	GovernorUserspace   = cpu.GovernorUserspace
)

// Sensing modes (see WithSources).
const (
	// SourceHPC runs per-PID counter deltas through the learned formula —
	// the paper's original Sensor path and the default.
	SourceHPC = source.ModeHPC
	// SourceProcfs is the no-counters fallback: a utilisation-based machine
	// estimate attributed by per-PID CPU-time share.
	SourceProcfs = source.ModeProcfs
	// SourceRAPL measures the machine with the simulated RAPL package+DRAM
	// energy counters and attributes by CPU-time share.
	SourceRAPL = source.ModeRAPL
	// SourceBlended measures the total with the RAPL package domain and
	// attributes it by per-PID counter activity (Kepler-style).
	SourceBlended = source.ModeBlended
	// SourceDelegated is the guest side of the VM bridge: the machine total
	// is whatever the host delegated for this VM, attributed across the
	// guest's processes by counter activity (see WithVMBridge).
	SourceDelegated = source.ModeDelegated
)

// Staleness policies of a DelegatedSource (see NewDelegatedSource).
const (
	// StaleZero stops reporting a measurement once delegated frames stop
	// arriving, so the guest's estimates collapse to zero instead of
	// freezing. The default.
	StaleZero = vmbridge.StaleZero
	// StaleHold keeps reporting the last delegated figure while the link is
	// quiet.
	StaleHold = vmbridge.StaleHold
)

// ParseSourceMode resolves a sensing-mode name such as "blended".
func ParseSourceMode(s string) (SourceMode, error) { return source.ParseMode(s) }

// Target kinds.
const (
	// TargetProcess identifies one OS process by PID.
	TargetProcess = target.KindProcess
	// TargetCgroup identifies a control group by hierarchy path.
	TargetCgroup = target.KindCgroup
	// TargetMachine identifies the whole machine.
	TargetMachine = target.KindMachine
	// TargetVM identifies a virtual machine by name (see WithVMs).
	TargetVM = target.KindVM
)

// ProcessTarget returns the target identifying one OS process.
func ProcessTarget(pid int) Target { return target.Process(pid) }

// CgroupTarget returns the target identifying a control group by its
// hierarchy path ("web", "web/api").
func CgroupTarget(path string) Target { return target.Cgroup(path) }

// MachineTarget returns the target identifying the whole machine.
func MachineTarget() Target { return target.Machine() }

// VMTarget returns the target identifying a virtual machine by name.
func VMTarget(name string) Target { return target.VM(name) }

// NewCgroupHierarchy creates an empty control-group hierarchy. Populate it
// with Create/Add and hand it to a Monitor through WithCgroups.
func NewCgroupHierarchy() *CgroupHierarchy { return cgroup.NewHierarchy() }

// ParseCgroupSpec parses a specification like "web=1,2,3;web/api=4;db=5"
// into group paths and member ids; Build materialises it into a hierarchy.
func ParseCgroupSpec(spec string) (*CgroupSpec, error) { return cgroup.ParseSpec(spec) }

// IntelCorei3_2120 returns the paper's testbed processor (Table 1).
func IntelCorei3_2120() Spec { return cpu.IntelCorei3_2120() }

// IntelCore2DuoE6600 returns the simple comparator architecture.
func IntelCore2DuoE6600() Spec { return cpu.IntelCore2DuoE6600() }

// IntelXeonE5_2650 returns a larger server-class processor.
func IntelXeonE5_2650() Spec { return cpu.IntelXeonE5_2650() }

// AMDOpteron6172 returns a non-Intel processor.
func AMDOpteron6172() Spec { return cpu.AMDOpteron6172() }

// SpecCatalog returns every predefined processor keyed by identifier.
func SpecCatalog() map[string]Spec { return cpu.Catalog() }

// LookupSpec resolves a catalogue identifier such as "i3-2120".
func LookupSpec(name string) (Spec, error) { return cpu.LookupSpec(name) }

// DefaultMachineConfig returns the paper's testbed configuration: an Intel
// Core i3-2120 under the ondemand governor.
func DefaultMachineConfig() MachineConfig { return machine.DefaultConfig() }

// NewMachine builds a simulated host.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// NewPackingScheduler returns the energy-aware consolidating scheduler used
// by the scheduling example.
func NewPackingScheduler() sched.Scheduler { return sched.NewPacking() }

// NewLoadBalancingScheduler returns the default CFS-like scheduler.
func NewLoadBalancingScheduler() sched.Scheduler { return sched.NewLoadBalancer() }

// NewPowerSpy attaches a simulated wall power meter to a machine.
func NewPowerSpy(m *Machine, cfg PowerSpyConfig) (*PowerSpy, error) {
	return powermeter.NewPowerSpy(m, cfg)
}

// DefaultPowerSpyConfig mirrors the physical PowerSpy characteristics.
func DefaultPowerSpyConfig() PowerSpyConfig { return powermeter.DefaultPowerSpyConfig() }

// CPUStress returns a CPU-intensive workload at the given utilisation level;
// a zero duration runs forever.
func CPUStress(level float64, duration time.Duration) (Generator, error) {
	return workload.CPUStress(level, duration)
}

// MemoryStress returns a memory-intensive workload at the given utilisation
// level; a zero duration runs forever.
func MemoryStress(level float64, duration time.Duration) (Generator, error) {
	return workload.MemoryStress(level, duration)
}

// MixedStress blends the CPU- and memory-intensive profiles.
func MixedStress(cpuWeight, level float64, duration time.Duration) (Generator, error) {
	return workload.MixedStress(cpuWeight, level, duration)
}

// SPECjbb returns the SPECjbb2013-like phased workload of the paper's
// preliminary experiment.
func SPECjbb(cfg SPECjbbConfig) (Generator, error) { return workload.NewSPECjbb(cfg) }

// DefaultSPECjbbConfig mirrors the shape of the paper's Figure 3 run.
func DefaultSPECjbbConfig() SPECjbbConfig { return workload.DefaultSPECjbbConfig() }

// DefaultCalibrationOptions returns the full Figure 1 sweep configuration.
func DefaultCalibrationOptions() CalibrationOptions { return calibration.DefaultOptions() }

// QuickCalibrationOptions returns a reduced sweep for demos and tests.
func QuickCalibrationOptions() CalibrationOptions { return calibration.QuickOptions() }

// Calibrate learns the CPU energy profile of the processor described by cfg
// by running the Figure 1 process on simulated machines.
func Calibrate(cfg MachineConfig, opts CalibrationOptions) (*PowerModel, *CalibrationReport, error) {
	cal, err := calibration.New(cfg, opts)
	if err != nil {
		return nil, nil, err
	}
	return cal.Run()
}

// PaperReferenceModel returns the exact power model published in the paper
// for the Intel Core i3-2120.
func PaperReferenceModel() *PowerModel { return model.PaperReferenceModel() }

// LoadModel reads a power model previously saved with (*PowerModel).SaveFile.
func LoadModel(path string) (*PowerModel, error) { return model.LoadFile(path) }

// NewMonitor wires the PowerAPI pipeline (Sensor, Formula, Aggregator,
// Reporter) onto a machine with the given power model. Options shard the
// pipeline (WithShards), add an aggregation dimension
// (WithProcessNameGrouping) or extra Reporter components (WithCSVReporter,
// WithJSONReporter, WithEnergyAccounting).
func NewMonitor(m *Machine, powerModel *PowerModel, opts ...MonitorOption) (*Monitor, error) {
	return core.New(m, powerModel, opts...)
}

// WithShards splits the Sensor and Formula stages into n PID-partitioned
// shards each, letting the pipeline exploit multiple cores and amortize
// per-PID message overhead when monitoring large process counts. The default
// of 1 preserves the paper's one-actor-per-stage pipeline.
func WithShards(n int) MonitorOption { return core.WithShards(n) }

// WithSources selects the sensing backends of the pipeline: SourceHPC
// (default), SourceProcfs, SourceRAPL or SourceBlended. See the SourceMode
// constants for what each mode measures and how it attributes power.
func WithSources(mode SourceMode) MonitorOption { return core.WithSources(mode) }

// WithCollectTimeout overrides the wall-clock budget of synchronous monitor
// operations (Attach, Detach, Collect); it must be positive.
func WithCollectTimeout(d time.Duration) MonitorOption { return core.WithCollectTimeout(d) }

// WithReportRetention caps how many rounds RunMonitored keeps in the slice it
// returns (the most recent n), so long-running loops hold bounded memory.
// Zero keeps every round (the historical behaviour).
func WithReportRetention(n int) MonitorOption { return core.WithReportRetention(n) }

// WithHistory retains the most recent rounds in per-target ring buffers
// (capacity samples per target; non-positive selects the default) and enables
// Monitor.Query — windowed avg/max/p95 watts per process, cgroup and the
// machine total — plus the HTTP /api/v1/query endpoint.
func WithHistory(capacity int) MonitorOption { return core.WithHistory(capacity) }

// WithTraceRing sizes the per-round trace ring backing Monitor.Tracer() and
// the /api/v1/debug/rounds endpoint (default 64 rounds; 0 keeps the default).
func WithTraceRing(rounds int) MonitorOption { return core.WithTraceRing(rounds) }

// WithSelfPower meters the monitoring process itself: every report carries
// the daemon's own consumption (SelfWatts, the powerapi-self row) computed
// from the process's real CPU time scaled to the machine spec's TDP.
func WithSelfPower() MonitorOption { return core.WithSelfPower() }

// WithLogger routes the pipeline's structured log events (subscription
// lifecycle, actor restarts) through the given slog logger instead of
// slog.Default().
func WithLogger(l *slog.Logger) MonitorOption { return core.WithLogger(l) }

// WithAdvisorFeed subscribes an Advisor to the monitor's report fanout:
// every sampling round is fed to ObserveReport with the given interval, so
// findings accumulate without a hand-written callback loop. Observation
// failures surface through the monitor's ErrorCount/LastError.
func WithAdvisorFeed(adv *Advisor, interval time.Duration) MonitorOption {
	return core.WithReporter("advisor", func(r MonitorReport) error {
		return adv.ObserveReport(r, interval)
	})
}

// NewAPIServer mounts a Monitor behind the HTTP serving layer: Prometheus
// text exposition on /metrics and the JSON API under /api/v1 (targets,
// windowed history queries, dynamic attach/detach). Serve the returned
// server's Handler with net/http and Close it when done.
func NewAPIServer(m *Monitor) (*APIServer, error) { return httpapi.New(m) }

// ParseTarget resolves the string form of a target: "pid:1000",
// "cgroup:web/api" or "machine".
func ParseTarget(s string) (Target, error) { return target.Parse(s) }

// WithCgroups attaches a control-group hierarchy to the Monitor. Cgroup
// targets become attachable (Monitor.AttachTargets), every report carries
// the per-cgroup power rollup (MonitorReport.PerCgroup) — a group's power is
// the exact sum of its member processes, descendants included, with nested
// groups rolling up to their parents and no double counting — and
// memberships are re-synchronised on every sampling round as members exit
// or join.
func WithCgroups(h *CgroupHierarchy) MonitorOption { return core.WithCgroups(h) }

// WithProcessNameGrouping aggregates power by process name in addition to the
// per-PID and per-timestamp dimensions.
func WithProcessNameGrouping(m *Machine) MonitorOption {
	return core.WithProcessNameGrouping(m)
}

// WithVMs designates named virtual machines on the host Monitor: each VMDef
// maps a VM name to a cgroup subtree or an explicit PID set. Every sampling
// round the report carries each VM's power (MonitorReport.PerVM) — the exact
// sum of its members' per-process estimates, every PID counted into the
// machine total exactly once — and vm targets (VMTarget) become attachable.
// Definitions must not overlap. A VMPublisher delegates these figures to
// nested guest instances over the VM bridge.
func WithVMs(defs ...VMDef) MonitorOption { return core.WithVMs(defs...) }

// WithVMBridge turns a Monitor into the guest side of the host↔guest VM
// bridge: the sensing mode becomes SourceDelegated and the machine total of
// every round is the latest power figure the host delegated for this VM (the
// given DelegatedSource), re-attributed across the guest's processes by their
// counter activity so the guest's estimates sum exactly to the delegated
// watts. The Monitor owns the source and closes it on Shutdown.
func WithVMBridge(src *DelegatedSource) MonitorOption { return core.WithVMBridge(src) }

// NewVMPublisher is the host side of the VM bridge: it subscribes to the
// Monitor's report fanout (losslessly) and streams one VMPowerFrame per
// defined VM per sampling round over the transport — the in-process loopback
// (NewLoopbackBridge) or the TCP/JSON-lines link (ListenVMBridge). The
// Monitor must define VMs (WithVMs). Close the publisher to end the stream;
// it owns the transport.
func NewVMPublisher(m *Monitor, tr VMBridgeTransport) (*VMPublisher, error) {
	return vmbridge.NewPublisher(m, tr)
}

// NewDelegatedSource creates the guest side of the VM bridge: a machine-scope
// sensor source consuming the host's frames for the named VM from recv, with
// staleness detection — after WithStaleAfter rounds without a fresh frame the
// WithStalePolicy policy applies (zero by default), so a severed link never
// yields frozen watts. Plug it into a Monitor with WithVMBridge.
func NewDelegatedSource(recv VMBridgeReceiver, vm string, opts ...DelegatedSourceOption) (*DelegatedSource, error) {
	return vmbridge.NewDelegatedSource(recv, vm, opts...)
}

// WithStalePolicy selects what a DelegatedSource reports once delegated
// frames stop arriving: StaleZero (default) or StaleHold.
func WithStalePolicy(p StalePolicy) DelegatedSourceOption { return vmbridge.WithStalePolicy(p) }

// WithStaleAfter overrides how many consecutive sampling rounds without a
// fresh frame a DelegatedSource tolerates before its policy applies.
func WithStaleAfter(rounds int) DelegatedSourceOption { return vmbridge.WithStaleAfter(rounds) }

// ParseStalePolicy resolves a staleness-policy name ("zero", "hold").
func ParseStalePolicy(s string) (StalePolicy, error) { return vmbridge.ParseStalePolicy(s) }

// NewLoopbackBridge creates the in-process VM bridge transport: Send fans
// every frame out to every receiver created with NewReceiver. It connects a
// host Monitor and nested guest Monitors inside one process (tests, examples,
// simulated guests).
func NewLoopbackBridge() *LoopbackBridge { return vmbridge.NewLoopback() }

// ListenVMBridge starts the TCP/JSON-lines VM bridge transport on addr — the
// virtio-serial stand-in the daemon serves with -vm-publish. Hand it to
// NewVMPublisher; guests dial it with DialVMBridge.
func ListenVMBridge(addr string) (*TCPBridgePublisher, error) { return vmbridge.ListenTCP(addr) }

// DialVMBridge connects a guest to a TCP VM bridge served by ListenVMBridge,
// retrying until the host is up (attempts × pause).
func DialVMBridge(addr string, attempts int, pause time.Duration) (*TCPBridgeReceiver, error) {
	return vmbridge.DialTCPWithRetry(addr, attempts, pause)
}

// WithCSVReporter adds a Reporter that appends one CSV row per monitored
// process and sampling round to w. Rows are buffered and flushed to w when
// the monitor shuts down.
func WithCSVReporter(w io.Writer, m *Machine) (MonitorOption, error) {
	reporter, err := core.NewCSVReporter(w, processNameResolver(m), core.WithBufferedWrites())
	if err != nil {
		return nil, err
	}
	return core.WithFlushingReporter("csv", reporter.Report, reporter.Flush), nil
}

// WithTargetCSVReporter is WithCSVReporter over the target schema: every row
// carries the target kind ("process", "cgroup") and its identity (PID or
// hierarchy path), and the per-cgroup rollup is written next to the
// per-process rows.
func WithTargetCSVReporter(w io.Writer, m *Machine) (MonitorOption, error) {
	reporter, err := core.NewCSVReporter(w, processNameResolver(m),
		core.WithBufferedWrites(), core.WithTargetRows())
	if err != nil {
		return nil, err
	}
	return core.WithFlushingReporter("csv", reporter.Report, reporter.Flush), nil
}

func processNameResolver(m *Machine) func(pid int) string {
	return func(pid int) string {
		p, err := m.Processes().Get(pid)
		if err != nil {
			return "unknown"
		}
		return p.Name()
	}
}

// WithJSONReporter adds a Reporter that writes one JSON object per sampling
// round to w (the perCgroup object carries the cgroup rollup when control
// groups are monitored). Lines are buffered and flushed to w when the
// monitor shuts down.
func WithJSONReporter(w io.Writer) (MonitorOption, error) {
	reporter, err := core.NewJSONLinesReporter(w, core.WithBufferedWrites())
	if err != nil {
		return nil, err
	}
	return core.WithFlushingReporter("jsonl", reporter.Report, reporter.Flush), nil
}

// WithEnergyAccounting adds a Reporter integrating per-process power into the
// returned EnergyAccumulator.
func WithEnergyAccounting() (*EnergyAccumulator, MonitorOption) {
	acc := core.NewEnergyAccumulator()
	return acc, core.WithReporter("energy", acc.Report)
}

// NewAdvisor creates an energy-leak advisor with default thresholds; feed it
// monitoring reports (ObserveReport) and ask it for Findings.
func NewAdvisor() (*Advisor, error) {
	return advisor.New(advisor.DefaultThresholds())
}

// DefaultExperimentScale mirrors the paper's experiment dimensions.
func DefaultExperimentScale() ExperimentScale { return experiments.DefaultScale() }

// QuickExperimentScale shrinks the experiment durations for demos and tests.
func QuickExperimentScale() ExperimentScale { return experiments.QuickScale() }
