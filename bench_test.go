package powerapi

import (
	"fmt"
	"testing"
	"time"

	"powerapi/internal/actor"
	"powerapi/internal/experiments"
	"powerapi/internal/machine"
	"powerapi/internal/workload"
)

// The benchmarks below regenerate the paper's tables and figures (see
// DESIGN.md's per-experiment index). They report the observed error metrics
// through b.ReportMetric so `go test -bench` output doubles as a compact
// reproduction summary; EXPERIMENTS.md records the full-scale numbers.

// BenchmarkTable1Spec regenerates Table 1 (the i3-2120 specification table).
func BenchmarkTable1Spec(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(IntelCorei3_2120())
		if err != nil {
			b.Fatal(err)
		}
		if res.Table().Rows() != 13 {
			b.Fatal("unexpected Table 1 shape")
		}
	}
}

// BenchmarkCalibration regenerates the §4 power-model equations by running
// the Figure 1 learning process (quick scale).
func BenchmarkCalibration(b *testing.B) {
	scale := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.LearnModel(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Model.IdleWatts, "idle-watts")
		if len(res.Comparisons) > 0 {
			b.ReportMetric(res.Comparisons[0].Ratio, "instr-coeff-ratio-vs-paper")
		}
	}
}

// BenchmarkFigure3SPECjbb regenerates Figure 3: the SPECjbb2013 run compared
// against PowerSpy, reporting the median error (the paper reports ~15%).
func BenchmarkFigure3SPECjbb(b *testing.B) {
	scale := experiments.QuickScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Errors.MedianAPE*100, "median-error-%")
		b.ReportMetric(res.Errors.MAPE*100, "mean-error-%")
	}
}

// BenchmarkComparisonBaselines regenerates the §4 comparison (Bertran-style
// decomposable model, CPU-load model, RAPL) on their respective setups.
func BenchmarkComparisonBaselines(b *testing.B) {
	scale := experiments.QuickScale()
	scale.EvaluationDuration = 90 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Comparison(scale, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			if row.MeanError >= 0 {
				switch row.Model {
				case "PowerAPI (3 counters, per-frequency)":
					b.ReportMetric(row.MeanError*100, "powerapi-mean-error-%")
				case "Bertran et al. (decomposable, fixed frequency)":
					b.ReportMetric(row.MeanError*100, "bertran-mean-error-%")
				case "CPU-load model (Versick et al.)":
					b.ReportMetric(row.MeanError*100, "cpuload-mean-error-%")
				}
			}
		}
	}
}

// BenchmarkAblationCounterSelection regenerates the counter-selection
// ablation (fixed paper counters vs Pearson vs Spearman vs CPU-load only).
func BenchmarkAblationCounterSelection(b *testing.B) {
	scale := experiments.QuickScale()
	scale.EvaluationDuration = 60 * time.Second
	scale.SPECjbb.Duration = 80 * time.Second
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ablation(scale)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			switch row.Strategy {
			case "fixed paper counters":
				b.ReportMetric(row.MedianError*100, "fixed-median-error-%")
			case "spearman top-3":
				b.ReportMetric(row.MedianError*100, "spearman-median-error-%")
			case "cpu-load only (no counters)":
				b.ReportMetric(row.MedianError*100, "cpuload-median-error-%")
			}
		}
	}
}

// BenchmarkMachineStep measures the cost of one simulation tick with a
// realistic process mix (simulator throughput, not a paper figure).
func BenchmarkMachineStep(b *testing.B) {
	cfg := machine.DefaultConfig()
	m, err := machine.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		gen, err := workload.MixedStress(0.5, 0.7, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.Spawn(gen); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitoringCollect measures the per-round overhead of the PowerAPI
// pipeline (Sensor → Formula → Aggregator → Reporter), supporting the
// paper's "non-intrusive and efficient" claim.
func BenchmarkMonitoringCollect(b *testing.B) {
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var pids []int
	for i := 0; i < 4; i++ {
		gen, err := MemoryStress(0.7, 0)
		if err != nil {
			b.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			b.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	monitor, err := NewMonitor(m, PaperReferenceModel())
	if err != nil {
		b.Fatal(err)
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(pids...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(20 * time.Millisecond); err != nil {
			b.Fatal(err)
		}
		if _, err := monitor.Collect(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorShards measures sampling-round throughput of the sharded
// pipeline across pool sizes and monitored-process counts. Each iteration
// advances the machine by one simulation tick (the cheapest valid window) and
// performs one Collect, so the measured cost is dominated by the Sensor →
// Formula → Aggregator hot path. The pids/s metric is the number of
// per-process attributions produced per wall-clock second.
func BenchmarkMonitorShards(b *testing.B) {
	for _, pidCount := range []int{100, 1000, 10000, 100000} {
		for _, shards := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("pids=%d/shards=%d", pidCount, shards), func(b *testing.B) {
				benchmarkMonitorTick(b, pidCount, shards)
			})
		}
	}
}

func benchmarkMonitorTick(b *testing.B, pidCount, shards int) {
	cfg := DefaultMachineConfig()
	cfg.Governor = GovernorPerformance
	m, err := NewMachine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pids := make([]int, 0, pidCount)
	for i := 0; i < pidCount; i++ {
		// Vary the demand so shards don't all carry identical work.
		gen, err := CPUStress(0.1+0.8*float64(i%9)/8, 0)
		if err != nil {
			b.Fatal(err)
		}
		p, err := m.Spawn(gen)
		if err != nil {
			b.Fatal(err)
		}
		pids = append(pids, p.PID())
	}
	monitor, err := NewMonitor(m, PaperReferenceModel(), WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(pids...); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(m.Tick()); err != nil {
			b.Fatal(err)
		}
		report, err := monitor.Collect()
		if err != nil {
			b.Fatal(err)
		}
		if len(report.PerPID) != pidCount {
			b.Fatalf("round attributed %d PIDs, want %d", len(report.PerPID), pidCount)
		}
	}
	b.ReportMetric(float64(pidCount)*float64(b.N)/b.Elapsed().Seconds(), "pids/s")
}

// BenchmarkSubscriptionFanout measures the per-round cost of fanning one
// aggregated report out to N concurrent subscribers over 1 000 monitored
// targets. Conflating subscribers are deliberately left unconsumed: the
// fanout pays the full offer/evict path every round, which is the serving
// layer's steady state under slow scrapers.
func BenchmarkSubscriptionFanout(b *testing.B) {
	const pidCount = 1000
	for _, subscribers := range []int{1, 16, 128} {
		b.Run(fmt.Sprintf("subs=%d/pids=%d", subscribers, pidCount), func(b *testing.B) {
			cfg := DefaultMachineConfig()
			cfg.Governor = GovernorPerformance
			m, err := NewMachine(cfg)
			if err != nil {
				b.Fatal(err)
			}
			pids := make([]int, 0, pidCount)
			for i := 0; i < pidCount; i++ {
				gen, err := CPUStress(0.1+0.8*float64(i%9)/8, 0)
				if err != nil {
					b.Fatal(err)
				}
				p, err := m.Spawn(gen)
				if err != nil {
					b.Fatal(err)
				}
				pids = append(pids, p.PID())
			}
			monitor, err := NewMonitor(m, PaperReferenceModel())
			if err != nil {
				b.Fatal(err)
			}
			defer monitor.Shutdown()
			if err := monitor.Attach(pids...); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < subscribers; i++ {
				if _, err := monitor.Subscribe(SubscribeOptions{Policy: Conflate}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Run(m.Tick()); err != nil {
					b.Fatal(err)
				}
				report, err := monitor.Collect()
				if err != nil {
					b.Fatal(err)
				}
				if len(report.PerPID) != pidCount {
					b.Fatalf("round attributed %d PIDs, want %d", len(report.PerPID), pidCount)
				}
			}
			b.ReportMetric(float64(subscribers)*float64(b.N)/b.Elapsed().Seconds(), "deliveries/s")
		})
	}
}

// BenchmarkRouterRoute measures the dispatch cost of the consistent-hash
// router on the attach/tick path.
func BenchmarkRouterRoute(b *testing.B) {
	system := actor.NewSystem("bench")
	defer system.Shutdown()
	refs := make([]*actor.Ref, 8)
	for i := range refs {
		ref, err := system.Spawn(fmt.Sprintf("sink-%d", i),
			actor.BehaviorFunc(func(*actor.Context, actor.Message) {}), 4096)
		if err != nil {
			b.Fatal(err)
		}
		refs[i] = ref
	}
	router, err := actor.NewRouter(actor.ConsistentHash, refs...)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := router.Route(uint64(i), i); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActorThroughput measures raw event-bus message throughput,
// supporting the paper's "millions of messages per second" actor claim.
func BenchmarkActorThroughput(b *testing.B) {
	system := actor.NewSystem("bench")
	defer system.Shutdown()
	sink, err := system.Spawn("sink", actor.BehaviorFunc(func(*actor.Context, actor.Message) {}), 4096)
	if err != nil {
		b.Fatal(err)
	}
	if err := system.Bus().Subscribe("bench", sink); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		system.Bus().Publish("bench", i)
	}
}
