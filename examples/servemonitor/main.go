// Servemonitor: consume one monitor from many places at once.
//
// The paper's Reporter is the terminal stage of the pipeline; this demo shows
// the redesigned consumption API that turns it into a serving surface. One
// blended 4-shard monitor fans its rounds out to three concurrent
// subscribers with different backpressure policies — a lossless auditor
// (Block), a live dashboard that only ever wants the latest round (Conflate)
// and a deliberately slow logger that sheds load (DropOldest) — while a
// retained-history store answers windowed avg/max/p95 queries and the HTTP
// layer exposes the same figures as Prometheus metrics and JSON.
//
//	go run ./examples/servemonitor
package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"time"

	"powerapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "servemonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Step 1: learning the CPU energy profile (quick calibration sweep)...")
	powerModel, _, err := powerapi.Calibrate(powerapi.DefaultMachineConfig(), powerapi.QuickCalibrationOptions())
	if err != nil {
		return err
	}

	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return err
	}
	hierarchy := powerapi.NewCgroupHierarchy()
	for _, tenant := range []struct {
		cgroup string
		level  float64
	}{{"web", 0.8}, {"web", 0.5}, {"db", 0.9}} {
		gen, err := powerapi.CPUStress(tenant.level, 0)
		if err != nil {
			return err
		}
		p, err := host.Spawn(gen)
		if err != nil {
			return err
		}
		if err := hierarchy.Add(tenant.cgroup, p.PID()); err != nil {
			return err
		}
	}

	monitor, err := powerapi.NewMonitor(host, powerModel,
		powerapi.WithSources(powerapi.SourceBlended),
		powerapi.WithShards(4),
		powerapi.WithCgroups(hierarchy),
		powerapi.WithHistory(256),
		powerapi.WithReportRetention(64),
	)
	if err != nil {
		return err
	}
	defer monitor.Shutdown()
	if err := monitor.AttachAllRunnable(); err != nil {
		return err
	}

	// Three concurrent consumers of the same pipeline, one per policy.
	auditor, err := monitor.Subscribe(powerapi.SubscribeOptions{
		Name: "auditor", Policy: powerapi.Block, Buffer: 32})
	if err != nil {
		return err
	}
	dashboard, err := monitor.Subscribe(powerapi.SubscribeOptions{
		Name: "dashboard", Policy: powerapi.Conflate})
	if err != nil {
		return err
	}
	slowLogger, err := monitor.Subscribe(powerapi.SubscribeOptions{
		Name: "slow-logger", Policy: powerapi.DropOldest, Buffer: 2,
		CgroupSubtree: "web"})
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	var audited, logged int
	var lastDashboard powerapi.MonitorReport
	wg.Add(3)
	go func() { // lossless: sees every round exactly once
		defer wg.Done()
		for range auditor.C() {
			audited++
		}
	}()
	go func() { // latest-only: whatever is current when it looks
		defer wg.Done()
		for r := range dashboard.C() {
			lastDashboard = r
		}
	}()
	go func() { // slow consumer: the fanout sheds its backlog, never blocks
		defer wg.Done()
		for range slowLogger.C() {
			time.Sleep(3 * time.Millisecond)
			logged++
		}
	}()

	// The HTTP layer is a fourth subscriber; httptest stands in for a real
	// listener so the demo stays hermetic (the daemon's -listen serves the
	// same handler on a TCP port).
	api, err := powerapi.NewAPIServer(monitor)
	if err != nil {
		return err
	}
	defer api.Close()
	web := httptest.NewServer(api.Handler())
	defer web.Close()

	const rounds = 30
	fmt.Printf("\nStep 2: monitoring %d simulated seconds with 4 concurrent consumers...\n", rounds)
	if _, err := monitor.RunMonitored(rounds*time.Second, time.Second, nil); err != nil {
		return err
	}
	monitor.Shutdown() // closes every subscription; the consumers drain and exit
	wg.Wait()

	fmt.Printf("\n  auditor (Block):        %d/%d rounds, dropped %d\n", audited, rounds, auditor.Dropped())
	fmt.Printf("  dashboard (Conflate):   delivered %d, dropped %d, last round t=%s (%.2f W)\n",
		dashboard.Delivered(), dashboard.Dropped(), lastDashboard.Timestamp, lastDashboard.TotalWatts)
	fmt.Printf("  slow logger (DropOldest, web subtree): consumed %d, dropped %d\n", logged, slowLogger.Dropped())

	stats, err := monitor.Query(powerapi.QueryOptions{CgroupSubtree: "web"})
	if err != nil {
		return err
	}
	fmt.Println("\nStep 3: windowed history query (cgroup subtree \"web\"):")
	for _, st := range stats {
		fmt.Printf("  %-14s %3d samples  avg %6.2f W  p95 %6.2f W  max %6.2f W\n",
			st.Target, st.Samples, st.AvgWatts, st.P95Watts, st.MaxWatts)
	}

	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	fmt.Println("\nStep 4: the same figures as a Prometheus scrape (first lines of /metrics):")
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) > 8 {
		lines = lines[:8]
	}
	for _, line := range lines {
		fmt.Println("  " + line)
	}
	fmt.Println("  ...")
	return nil
}
