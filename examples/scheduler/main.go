// Scheduler: use power estimations to make an "informed scheduling decision",
// the motivation scenario of the paper's §2. The same bursty workload mix is
// run under the default load-balancing scheduler and under an energy-aware
// consolidating (packing) scheduler; PowerAPI estimates and the machine's
// energy counters show how consolidation lets idle cores drop into deep
// C-states and lower DVFS states.
//
//	go run ./examples/scheduler
package main

import (
	"fmt"
	"os"
	"time"

	"powerapi"
	"powerapi/internal/sched"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "scheduler:", err)
		os.Exit(1)
	}
}

type outcome struct {
	policy        string
	energyJoules  float64
	meanEstimateW float64
	meanUtil      float64
}

func run() error {
	policies := []struct {
		name      string
		scheduler sched.Scheduler
	}{
		{name: "load-balance (spread)", scheduler: powerapi.NewLoadBalancingScheduler()},
		{name: "packing (consolidate)", scheduler: powerapi.NewPackingScheduler()},
	}
	var results []outcome
	for _, p := range policies {
		res, err := simulate(p.name, p.scheduler)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	fmt.Printf("\n%-24s %14s %16s %12s\n", "POLICY", "ENERGY (J)", "MEAN ESTIMATE (W)", "MEAN UTIL")
	for _, r := range results {
		fmt.Printf("%-24s %14.1f %16.2f %11.0f%%\n", r.policy, r.energyJoules, r.meanEstimateW, r.meanUtil*100)
	}
	if len(results) == 2 {
		saved := results[0].energyJoules - results[1].energyJoules
		if saved >= 0 {
			fmt.Printf("\nConsolidating the tenants saved %.1f J (%.1f%%) over 60 simulated seconds\n",
				saved, saved/results[0].energyJoules*100)
			fmt.Println("by letting the second core idle in deep C-states — the kind of informed")
			fmt.Println("scheduling decision the paper argues power estimation should drive.")
		} else {
			fmt.Printf("\nOn this run spreading was cheaper by %.1f J: consolidation kept one core\n", -saved)
			fmt.Println("at a high DVFS state while spreading let both cores run slower. Power")
			fmt.Println("estimations make exactly this trade-off visible to the scheduler.")
		}
	}
	return nil
}

func simulate(policy string, scheduler sched.Scheduler) (outcome, error) {
	fmt.Printf("Running the bursty workload mix under %q...\n", policy)
	cfg := powerapi.DefaultMachineConfig()
	// Pin the frequency so both policies execute the same work per second and
	// the difference comes from core consolidation (C-states, uncore).
	cfg.Governor = powerapi.GovernorPerformance
	cfg.Scheduler = scheduler
	host, err := powerapi.NewMachine(cfg)
	if err != nil {
		return outcome{}, err
	}
	// Three light, bursty tenants: individually they need ~30% of a thread.
	for i := 0; i < 3; i++ {
		gen, err := powerapi.MixedStress(0.6, 0.3, 0)
		if err != nil {
			return outcome{}, err
		}
		if _, err := host.Spawn(gen); err != nil {
			return outcome{}, err
		}
	}
	monitor, err := powerapi.NewMonitor(host, powerapi.PaperReferenceModel())
	if err != nil {
		return outcome{}, err
	}
	defer monitor.Shutdown()
	if err := monitor.AttachAllRunnable(); err != nil {
		return outcome{}, err
	}

	var estimateSum, utilSum float64
	reports, err := monitor.RunMonitored(60*time.Second, time.Second, func(r powerapi.MonitorReport) {
		estimateSum += r.TotalWatts
		utilSum += host.TotalUtilization()
	})
	if err != nil {
		return outcome{}, err
	}
	n := float64(len(reports))
	return outcome{
		policy:        policy,
		energyJoules:  host.EnergyJoules(),
		meanEstimateW: estimateSum / n,
		meanUtil:      utilSum / n,
	}, nil
}
