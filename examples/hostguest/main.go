// Host↔guest power delegation: the paper's headline middleware capability —
// process-level power estimation *inside* virtual machines — end to end in
// one process. A host-side PowerAPI instance runs the 4-shard blended
// pipeline over four workloads designated as two VMs, a VMPublisher streams
// each VM's per-round power over the in-process loopback bridge (the
// virtio-serial stand-in), and two nested guest-side instances treat the
// delegated figure as their machine power, re-attributing it across their own
// processes. Every guest's per-process estimates sum exactly to the watts the
// host delegated; when the link drops, each guest applies its staleness
// policy (zero vs hold) instead of reporting frozen watts.
//
//	go run ./examples/hostguest
package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"powerapi"
)

// guest bundles one simulated guest VM: its own machine, named processes and
// a nested monitor fed by the bridge.
type guest struct {
	vm      string
	machine *powerapi.Machine
	monitor *powerapi.Monitor
	src     *powerapi.DelegatedSource
	names   map[int]string
}

func newGuest(bridge *powerapi.LoopbackBridge, vm string, model *powerapi.PowerModel,
	procs map[string]float64, opts ...powerapi.DelegatedSourceOption) (*guest, error) {
	m, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return nil, err
	}
	names := make(map[int]string, len(procs))
	procNames := make([]string, 0, len(procs))
	for name := range procs {
		procNames = append(procNames, name)
	}
	sort.Strings(procNames) // deterministic PID order
	for _, name := range procNames {
		gen, err := powerapi.CPUStress(procs[name], 0)
		if err != nil {
			return nil, err
		}
		p, err := m.Spawn(gen)
		if err != nil {
			return nil, err
		}
		names[p.PID()] = name
	}
	src, err := powerapi.NewDelegatedSource(bridge.NewReceiver(), vm, opts...)
	if err != nil {
		return nil, err
	}
	monitor, err := powerapi.NewMonitor(m, model, powerapi.WithShards(2), powerapi.WithVMBridge(src))
	if err != nil {
		return nil, err
	}
	if err := monitor.AttachAllRunnable(); err != nil {
		monitor.Shutdown()
		return nil, err
	}
	return &guest{vm: vm, machine: m, monitor: monitor, src: src, names: names}, nil
}

// collect advances the guest's clock one second and runs one nested round.
func (g *guest) collect() (powerapi.MonitorReport, error) {
	if _, err := g.machine.Run(time.Second); err != nil {
		return powerapi.MonitorReport{}, err
	}
	return g.monitor.Collect()
}

// report prints the guest's per-process rows and the conservation drift
// against the host-delegated figure.
func (g *guest) report(r powerapi.MonitorReport, delegated float64) {
	pids := make([]int, 0, len(r.PerPID))
	for pid := range r.PerPID {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return r.PerPID[pids[i]] > r.PerPID[pids[j]] })
	sum := 0.0
	for _, pid := range pids {
		sum += r.PerPID[pid]
		fmt.Printf("  guest %-5s pid:%-5d %-12s %7.2f W\n", g.vm, pid, g.names[pid], r.PerPID[pid])
	}
	fmt.Printf("  guest %-5s per-process sum %7.2f W vs delegated %7.2f W (drift %.1e)\n",
		g.vm, sum, delegated, math.Abs(sum-delegated))
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hostguest:", err)
		os.Exit(1)
	}
}

func run() error {
	model := powerapi.PaperReferenceModel()

	// --- Host: four workloads, two of them forming vm-a, two vm-b. ---------
	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return err
	}
	levels := []float64{1.0, 0.7, 0.5, 0.3}
	pids := make([]int, 0, len(levels))
	for _, level := range levels {
		gen, err := powerapi.CPUStress(level, 0)
		if err != nil {
			return err
		}
		p, err := host.Spawn(gen)
		if err != nil {
			return err
		}
		pids = append(pids, p.PID())
	}
	hostMon, err := powerapi.NewMonitor(host, model,
		powerapi.WithShards(4),
		powerapi.WithSources(powerapi.SourceBlended),
		powerapi.WithVMs(
			powerapi.VMDef{Name: "vm-a", PIDs: pids[:2]},
			powerapi.VMDef{Name: "vm-b", PIDs: pids[2:]},
		))
	if err != nil {
		return err
	}
	defer hostMon.Shutdown()
	if err := hostMon.AttachAllRunnable(); err != nil {
		return err
	}

	// --- Bridge and guests. ------------------------------------------------
	bridge := powerapi.NewLoopbackBridge()
	publisher, err := powerapi.NewVMPublisher(hostMon, bridge)
	if err != nil {
		return err
	}
	guestA, err := newGuest(bridge, "vm-a", model,
		map[string]float64{"api-server": 0.9, "cache": 0.4})
	if err != nil {
		return err
	}
	defer guestA.monitor.Shutdown()
	guestB, err := newGuest(bridge, "vm-b", model,
		map[string]float64{"db": 0.8, "replicator": 0.5, "cron": 0.1},
		powerapi.WithStalePolicy(powerapi.StaleHold))
	if err != nil {
		return err
	}
	defer guestB.monitor.Shutdown()
	guests := []*guest{guestA, guestB}

	fmt.Println("Host: 4-shard blended pipeline, 4 workloads designated as vm-a and vm-b.")
	fmt.Println("Guests: two nested PowerAPI instances fed over the loopback bridge.")

	// --- Monitor: one host round per second of simulated time, each guest --
	// --- re-attributing its delegated share the moment the frame lands.  --
	const rounds = 4
	for round := 1; round <= rounds; round++ {
		if _, err := host.Run(time.Second); err != nil {
			return err
		}
		r, err := hostMon.Collect()
		if err != nil {
			return err
		}
		fmt.Printf("\nROUND %d  host machine %.2f W active (%s), vm-a %.2f W, vm-b %.2f W\n",
			round, r.ActiveWatts, r.SourceMode, r.PerVM["vm-a"], r.PerVM["vm-b"])
		for _, g := range guests {
			if err := waitForFrame(g.src, uint64(round)); err != nil {
				return err
			}
			gr, err := g.collect()
			if err != nil {
				return err
			}
			g.report(gr, r.PerVM[g.vm])
		}
	}

	// --- Link loss: the publisher dies; each guest applies its policy. -----
	if err := publisher.Close(); err != nil {
		return err
	}
	fmt.Println("\nLINK LOSS  publisher closed; guests keep sampling")
	lastB := 0.0
	for i := 0; i < 2; i++ {
		for _, g := range guests {
			//powerapi:allow leasecheck collect wraps Collect; the lease is pipeline-managed, released on the next round
			gr, err := g.collect()
			if err != nil {
				return err
			}
			sum := 0.0
			for _, watts := range gr.PerPID {
				sum += watts
			}
			fmt.Printf("  guest %-5s round +%d: %7.2f W (policy %s, stale %v)\n",
				g.vm, i+1, sum, g.src.Policy(), g.src.Stale())
			// The second post-loss round is past the grace window: the demo
			// fails loudly if a policy misbehaves instead of printing a lie.
			if i == 1 {
				switch {
				case g.src.Policy() == powerapi.StaleZero && sum != 0:
					return fmt.Errorf("zero policy: guest %s froze at %.2f W after link loss", g.vm, sum)
				case g.src.Policy() == powerapi.StaleHold && sum == 0:
					return fmt.Errorf("hold policy: guest %s dropped its figure after link loss", g.vm)
				}
				if g.src.Policy() == powerapi.StaleHold {
					lastB = sum
				}
			}
		}
	}
	fmt.Printf("\nvm-a (zero policy) collapsed to 0 W instead of freezing; vm-b (hold) kept its last %.2f W.\n", lastB)
	return nil
}

// waitForFrame blocks until the guest's delegated source has consumed the
// given number of frames (the loopback delivers asynchronously).
func waitForFrame(src *powerapi.DelegatedSource, n uint64) error {
	deadline := time.Now().Add(5 * time.Second)
	for src.FrameCount() < n {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for delegated frame %d of %s", n, src.VMName())
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}
