// Raplmonitor: monitor the same workload mix through two sensing backends
// side by side — the paper's counter-formula pipeline (hpc) and the
// Kepler-style blended pipeline that splits the simulated RAPL package
// energy across processes keyed by their counter activity.
//
// The demo shows why real software-defined power meters blend sources: the
// formula path needs no power instrumentation at run time but carries model
// error, while the blended path is anchored on a measured energy counter so
// the per-process estimates always sum to the measured package power.
//
//	go run ./examples/raplmonitor
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"powerapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "raplmonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Step 1: learning the CPU energy profile (quick calibration sweep)...")
	powerModel, _, err := powerapi.Calibrate(powerapi.DefaultMachineConfig(), powerapi.QuickCalibrationOptions())
	if err != nil {
		return err
	}

	// One host, a mix of tenants with very different energy signatures.
	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return err
	}
	names := make(map[int]string)
	for _, tenant := range []struct {
		name  string
		level float64
		mem   bool
	}{
		{name: "batch-encoder", level: 0.9},
		{name: "web-backend", level: 0.6, mem: true},
		{name: "cron-task", level: 0.3},
	} {
		var gen powerapi.Generator
		if tenant.mem {
			gen, err = powerapi.MemoryStress(tenant.level, 0)
		} else {
			gen, err = powerapi.CPUStress(tenant.level, 0)
		}
		if err != nil {
			return err
		}
		p, err := host.Spawn(gen)
		if err != nil {
			return err
		}
		names[p.PID()] = tenant.name
	}

	// Two pipelines over the same machine: the blended one drives the
	// simulated time, the hpc one piggybacks a Collect per round.
	blended, err := powerapi.NewMonitor(host, powerModel, powerapi.WithSources(powerapi.SourceBlended))
	if err != nil {
		return err
	}
	defer blended.Shutdown()
	formula, err := powerapi.NewMonitor(host, powerModel, powerapi.WithSources(powerapi.SourceHPC))
	if err != nil {
		return err
	}
	defer formula.Shutdown()
	if err := blended.AttachAllRunnable(); err != nil {
		return err
	}
	if err := formula.AttachAllRunnable(); err != nil {
		return err
	}

	fmt.Println("\nStep 2: monitoring 10 simulated seconds through both backends...")
	fmt.Printf("%-8s %-14s %14s %14s\n", "TIME", "PROCESS", "BLENDED (W)", "FORMULA (W)")
	_, err = blended.RunMonitored(10*time.Second, 2*time.Second, func(br powerapi.MonitorReport) {
		fr, err := formula.Collect()
		if err != nil {
			fmt.Fprintln(os.Stderr, "raplmonitor: formula collect:", err)
			return
		}
		pids := make([]int, 0, len(br.PerPID))
		for pid := range br.PerPID {
			pids = append(pids, pid)
		}
		sort.Slice(pids, func(i, j int) bool { return br.PerPID[pids[i]] > br.PerPID[pids[j]] })
		for _, pid := range pids {
			fmt.Printf("%-8s %-14s %14.2f %14.2f\n",
				br.Timestamp.Truncate(time.Second), names[pid], br.PerPID[pid], fr.PerPID[pid])
		}
		fmt.Printf("%-8s %-14s %14.2f %14.2f   (RAPL package %.2f W, true CPU %.2f W)\n\n",
			br.Timestamp.Truncate(time.Second), "TOTAL", br.TotalWatts, fr.TotalWatts,
			br.MeasuredWatts, host.CPUPowerWatts())
	})
	if err != nil {
		return err
	}

	fmt.Println("The blended column always sums to the measured RAPL package power;")
	fmt.Println("the formula column is idle constant + model estimate and can drift from it.")
	return nil
}
