// SPECjbb: reproduce the paper's preliminary experiment (Figure 3) — run a
// SPECjbb2013-like benchmark on the simulated i3-2120, estimate its power
// with PowerAPI and compare the estimation against the PowerSpy wall
// measurements, reporting the median error.
//
//	go run ./examples/specjbb
package main

import (
	"fmt"
	"os"

	"powerapi/internal/experiments"
	"powerapi/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "specjbb:", err)
		os.Exit(1)
	}
}

func run() error {
	// The quick scale keeps the demo to a few seconds of wall time while
	// exercising every stage: calibration sweep, SPECjbb run, actor pipeline,
	// PowerSpy comparison. cmd/experiments -run fig3 executes the full-length
	// 2 500 s trace.
	scale := experiments.QuickScale()

	fmt.Println("Calibrating and running the SPECjbb2013-like evaluation (quick scale)...")
	res, err := experiments.Figure3(scale, nil)
	if err != nil {
		return err
	}

	if err := res.Table().Render(os.Stdout); err != nil {
		return err
	}
	measured := make([]float64, len(res.Points))
	estimated := make([]float64, len(res.Points))
	for i, p := range res.Points {
		measured[i] = p.Measured
		estimated[i] = p.Estimated
	}
	fmt.Println()
	fmt.Println("PowerSpy :", report.Sparkline(measured, 72))
	fmt.Println("PowerAPI :", report.Sparkline(estimated, 72))

	csvPath := "figure3_quick.csv"
	f, err := os.Create(csvPath)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.WriteTimeSeriesCSV(f, res.Points); err != nil {
		return err
	}
	fmt.Printf("\nTime series written to %s (plot it to reproduce Figure 3).\n", csvPath)
	fmt.Printf("The paper reports a median error of 15%%; this run measured %.1f%%.\n",
		res.Errors.MedianAPE*100)
	return nil
}
