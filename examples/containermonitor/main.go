// Containermonitor: attribute machine power to containers, not just PIDs.
//
// The paper's middleware reports the consumption of OS processes; modern
// deployments (Kepler, Scaphandre) want the same figure per container or
// slice. This demo builds a control-group hierarchy over a simulated tenant
// mix — two web replicas, an API sidecar nested under the web slice and a
// database — and monitors it with the Kepler-style blended pipeline over four
// Sensor shards: the simulated RAPL package energy is split across processes
// by counter activity, and the Aggregator rolls the per-process estimates up
// the hierarchy. Each group's power is the exact sum of its members,
// descendants included, and everything together sums back to the measured
// machine total — power is conserved, nothing is double-counted.
//
//	go run ./examples/containermonitor
package main

import (
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"powerapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "containermonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Step 1: learning the CPU energy profile (quick calibration sweep)...")
	powerModel, _, err := powerapi.Calibrate(powerapi.DefaultMachineConfig(), powerapi.QuickCalibrationOptions())
	if err != nil {
		return err
	}

	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return err
	}

	// A containerised tenant mix: the "web" slice holds two replicas and a
	// nested "web/api" sidecar; "db" runs alone; one bare process stays
	// outside any group.
	type container struct {
		cgroup string // empty: not in any group
		name   string
		level  float64
		mem    bool
	}
	layout := []container{
		{cgroup: "web", name: "web-1", level: 0.8, mem: true},
		{cgroup: "web", name: "web-2", level: 0.6, mem: true},
		{cgroup: "web/api", name: "api-sidecar", level: 0.4},
		{cgroup: "db", name: "db", level: 0.9},
		{cgroup: "", name: "bare-cron", level: 0.3},
	}
	hierarchy := powerapi.NewCgroupHierarchy()
	names := make(map[int]string)
	for _, c := range layout {
		var gen powerapi.Generator
		if c.mem {
			gen, err = powerapi.MemoryStress(c.level, 0)
		} else {
			gen, err = powerapi.CPUStress(c.level, 0)
		}
		if err != nil {
			return err
		}
		p, err := host.Spawn(gen)
		if err != nil {
			return err
		}
		names[p.PID()] = c.name
		if c.cgroup != "" {
			if err := hierarchy.Add(c.cgroup, p.PID()); err != nil {
				return err
			}
		}
	}

	monitor, err := powerapi.NewMonitor(host, powerModel,
		powerapi.WithSources(powerapi.SourceBlended),
		powerapi.WithShards(4),
		powerapi.WithCgroups(hierarchy),
	)
	if err != nil {
		return err
	}
	defer monitor.Shutdown()
	if err := monitor.AttachAllRunnable(); err != nil {
		return err
	}

	fmt.Println("\nStep 2: monitoring 10 simulated seconds (blended mode, 4 shards)...")
	fmt.Printf("%-8s %-18s %-10s %12s\n", "TIME", "TARGET", "KIND", "POWER (W)")
	_, err = monitor.RunMonitored(10*time.Second, 2*time.Second, func(r powerapi.MonitorReport) {
		pids := make([]int, 0, len(r.PerPID))
		for pid := range r.PerPID {
			pids = append(pids, pid)
		}
		sort.Slice(pids, func(i, j int) bool { return r.PerPID[pids[i]] > r.PerPID[pids[j]] })
		var sum float64
		for _, pid := range pids {
			sum += r.PerPID[pid]
			fmt.Printf("%-8s %-18s %-10s %12.2f\n",
				r.Timestamp.Truncate(time.Second), names[pid], "process", r.PerPID[pid])
		}
		paths := make([]string, 0, len(r.PerCgroup))
		for path := range r.PerCgroup {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			indent := strings.Repeat("  ", strings.Count(path, "/"))
			fmt.Printf("%-8s %-18s %-10s %12.2f\n",
				r.Timestamp.Truncate(time.Second), indent+path, "cgroup", r.PerCgroup[path])
		}
		fmt.Printf("%-8s %-18s %-10s %12.2f  (measured RAPL %.2f W, drift %.1e)\n\n",
			r.Timestamp.Truncate(time.Second), "TOTAL", "machine", r.TotalWatts,
			r.MeasuredWatts, math.Abs(sum-r.MeasuredWatts))
	})
	if err != nil {
		return err
	}

	fmt.Println("The web slice is the sum of its replicas plus the nested api sidecar;")
	fmt.Println("per-process power sums to the measured package power (drift ~1e-15),")
	fmt.Println("so grouping by container never invents or loses watts.")
	return nil
}
