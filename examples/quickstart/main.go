// Quickstart: calibrate a power model for the paper's Intel Core i3-2120
// testbed, spawn a couple of workloads and monitor their per-process power
// with the PowerAPI pipeline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"powerapi"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Learn the energy profile of the processor (Figure 1 of the paper).
	//    The quick options keep this demo fast; cmd/calibrate runs the full
	//    sweep and saves the model for reuse.
	fmt.Println("Step 1: learning the CPU energy profile (quick calibration sweep)...")
	calCfg := powerapi.DefaultMachineConfig()
	powerModel, calReport, err := powerapi.Calibrate(calCfg, powerapi.QuickCalibrationOptions())
	if err != nil {
		return err
	}
	fmt.Printf("  idle power: %.2f W, counters: %v\n\n", calReport.IdleWatts, calReport.SelectedNames)

	// 2. Build the host to monitor and start two very different tenants.
	cfg := powerapi.DefaultMachineConfig()
	host, err := powerapi.NewMachine(cfg)
	if err != nil {
		return err
	}
	cpuHog, err := powerapi.CPUStress(0.9, 0)
	if err != nil {
		return err
	}
	memHog, err := powerapi.MemoryStress(0.6, 0)
	if err != nil {
		return err
	}
	p1, err := host.Spawn(cpuHog)
	if err != nil {
		return err
	}
	p2, err := host.Spawn(memHog)
	if err != nil {
		return err
	}

	// 3. Attach the PowerAPI pipeline (Sensor → Formula → Aggregator →
	//    Reporter, Figure 2 of the paper) and monitor for 10 simulated
	//    seconds.
	monitor, err := powerapi.NewMonitor(host, powerModel)
	if err != nil {
		return err
	}
	defer monitor.Shutdown()
	if err := monitor.Attach(p1.PID(), p2.PID()); err != nil {
		return err
	}

	fmt.Println("Step 2: monitoring two processes for 10 simulated seconds...")
	fmt.Printf("%-8s %-18s %-18s %-12s\n", "TIME", "cpu-stress (W)", "mem-stress (W)", "TOTAL (W)")
	_, err = monitor.RunMonitored(10*time.Second, time.Second, func(r powerapi.MonitorReport) {
		fmt.Printf("%-8s %-18.2f %-18.2f %-12.2f\n",
			r.Timestamp.Truncate(time.Second), r.PerPID[p1.PID()], r.PerPID[p2.PID()], r.TotalWatts)
	})
	if err != nil {
		return err
	}

	fmt.Println("\nDone. The memory-bound process draws more power per unit of CPU time")
	fmt.Println("because last-level-cache misses dominate the learned power model,")
	fmt.Println("exactly as the paper's §4 equation suggests.")
	return nil
}
