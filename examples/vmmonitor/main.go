// VM monitor: the paper's conclusion singles out virtual machines as the next
// optimisation target ("they are more and more used and a lot of work still
// remains to optimize their power consumptions"). This example treats each
// process as a tenant VM, attributes power to every VM with PowerAPI and
// prints an energy bill per tenant — the building block of power-aware VM
// placement or billing.
//
//	go run ./examples/vmmonitor
package main

import (
	"fmt"
	"os"
	"sort"
	"time"

	"powerapi"
)

type vm struct {
	name string
	gen  func() (powerapi.Generator, error)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmmonitor:", err)
		os.Exit(1)
	}
}

func run() error {
	host, err := powerapi.NewMachine(powerapi.DefaultMachineConfig())
	if err != nil {
		return err
	}

	// Four tenant "VMs" with very different behaviours.
	tenants := []vm{
		{name: "vm-database", gen: func() (powerapi.Generator, error) { return powerapi.MemoryStress(0.8, 0) }},
		{name: "vm-webapp", gen: func() (powerapi.Generator, error) { return powerapi.MixedStress(0.6, 0.5, 0) }},
		{name: "vm-analytics", gen: func() (powerapi.Generator, error) { return powerapi.CPUStress(0.9, 0) }},
		{name: "vm-idle-dev", gen: func() (powerapi.Generator, error) { return powerapi.CPUStress(0.05, 0) }},
	}
	vmNames := make(map[int]string, len(tenants))
	for _, tenant := range tenants {
		gen, err := tenant.gen()
		if err != nil {
			return err
		}
		p, err := host.Spawn(gen)
		if err != nil {
			return err
		}
		vmNames[p.PID()] = tenant.name
	}

	// A fleet host monitors many tenants: shard the Sensor/Formula stages so
	// per-VM sampling spreads over the pipeline's actor pools.
	monitor, err := powerapi.NewMonitor(host, powerapi.PaperReferenceModel(), powerapi.WithShards(4))
	if err != nil {
		return err
	}
	defer monitor.Shutdown()
	if err := monitor.AttachAllRunnable(); err != nil {
		return err
	}

	const billingPeriod = 120 * time.Second
	fmt.Printf("Metering %d tenant VMs for %v of simulated time...\n\n", len(tenants), billingPeriod)

	energyByVM := make(map[int]float64, len(tenants))
	var activeEnergy float64
	reports, err := monitor.RunMonitored(billingPeriod, time.Second, func(r powerapi.MonitorReport) {
		for pid, watts := range r.PerPID {
			energyByVM[pid] += watts // 1-second samples: watts == joules
		}
		activeEnergy += r.ActiveWatts
	})
	if err != nil {
		return err
	}

	type bill struct {
		name   string
		joules float64
	}
	bills := make([]bill, 0, len(energyByVM))
	for pid, joules := range energyByVM {
		bills = append(bills, bill{name: vmNames[pid], joules: joules})
	}
	sort.Slice(bills, func(i, j int) bool { return bills[i].joules > bills[j].joules })

	fmt.Printf("%-16s %14s %10s\n", "TENANT", "ENERGY (J)", "SHARE")
	for _, b := range bills {
		share := 0.0
		if activeEnergy > 0 {
			share = b.joules / activeEnergy * 100
		}
		fmt.Printf("%-16s %14.1f %9.1f%%\n", b.name, b.joules, share)
	}
	idleEnergy := 0.0
	if len(reports) > 0 {
		idleEnergy = reports[0].IdleWatts * billingPeriod.Seconds()
	}
	fmt.Printf("\nShared platform idle energy over the period: %.1f J\n", idleEnergy)
	fmt.Println("The per-VM attribution comes entirely from hardware-counter activity,")
	fmt.Println("so a co-located noisy neighbour is charged for the cache misses it causes.")
	return nil
}
